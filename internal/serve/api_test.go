package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
	"erfilter/internal/online"
)

// TestRoutingTableVersioned pins the retirement of the pre-/v1 aliases:
// /v1 is the only serving surface. Every canonical route answers, every
// retired alias answers 404 in the standard envelope (no Deprecation
// forwarding, no handler reuse), and the match-stage routes answer 501
// match_disabled on a server built without the stage.
func TestRoutingTableVersioned(t *testing.T) {
	res := online.NewResolver(testConfig())
	res.Insert([]entity.Attribute{{Name: "name", Value: "canon powershot a540"}})
	ts := httptest.NewServer(NewServer(WrapResolver(res), nil, Options{}).Handler())
	defer ts.Close()

	cases := []struct {
		method, v1 string
		body       any
		want       int
	}{
		{"POST", "/v1/query", map[string]any{"text": "canon"}, http.StatusOK},
		{"POST", "/v1/query/batch", map[string]any{"queries": []map[string]any{{"text": "canon"}}}, http.StatusOK},
		{"POST", "/v1/entities", map[string]any{"text": "nikon coolpix"}, http.StatusOK},
		{"GET", "/v1/entities/0", nil, http.StatusOK},
		{"GET", "/v1/stats", nil, http.StatusOK},
		{"GET", "/v1/healthz", nil, http.StatusOK},
		{"GET", "/v1/readyz", nil, http.StatusOK},
		{"GET", "/v1/metrics", nil, http.StatusOK},
		{"GET", "/v1/snapshot", nil, http.StatusOK},
		// Match stage not configured on this server: mounted, refused
		// with a machine-readable 501.
		{"POST", "/v1/match", map[string]any{"queries": []map[string]any{{"text": "canon"}}}, http.StatusNotImplemented},
		{"GET", "/v1/clusters/0", nil, http.StatusNotImplemented},
		// Errors ride the same canonical-only registration.
		{"GET", "/v1/entities/404404", nil, http.StatusNotFound},
		{"DELETE", "/v1/entities/404404", nil, http.StatusNotFound},
	}
	do := func(method, path string, body any) *http.Response {
		t.Helper()
		var rd *bytes.Reader
		if body != nil {
			b, _ := json.Marshal(body)
			rd = bytes.NewReader(b)
		} else {
			rd = bytes.NewReader(nil)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	for _, c := range cases {
		rv1 := do(c.method, c.v1, c.body)
		if rv1.StatusCode != c.want {
			t.Errorf("%s %s answered %d, want %d", c.method, c.v1, rv1.StatusCode, c.want)
		}
		rv1.Body.Close()

		// The retired alias is gone: 404 in the envelope, regardless of
		// what the canonical path answers.
		legacy := strings.TrimPrefix(c.v1, "/v1")
		rlg := do(c.method, legacy, c.body)
		if rlg.StatusCode != http.StatusNotFound {
			t.Errorf("retired alias %s %s answered %d, want 404", c.method, legacy, rlg.StatusCode)
		}
		if got := rlg.Header.Get("Deprecation"); got != "" {
			t.Errorf("retired alias %s %s still carries Deprecation=%q", c.method, legacy, got)
		}
		var eb errBody
		if err := json.NewDecoder(rlg.Body).Decode(&eb); err != nil || eb.Error.Code != CodeNotFound {
			t.Errorf("retired alias %s %s: body not the 404 envelope (err=%v, code=%q)",
				c.method, legacy, err, eb.Error.Code)
		}
		rlg.Body.Close()
	}
}

// TestEnvelopeNoEndpointEscapes walks the full route table and forces an
// error out of every endpoint (a method the route does not serve), so
// no endpoint — present or future — can answer a non-2xx outside the
// JSON envelope without failing this test.
func TestEnvelopeNoEndpointEscapes(t *testing.T) {
	res := online.NewResolver(testConfig())
	s := NewServer(WrapResolver(res), nil, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, rt := range s.routes() {
		path := strings.ReplaceAll(rt.pattern, "{id}", "1")
		req, err := http.NewRequest("PATCH", ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("PATCH %s: status %d, want 405", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("PATCH %s: Content-Type %q, want application/json", path, ct)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, rt.method) {
			t.Errorf("PATCH %s: Allow %q does not offer %s", path, allow, rt.method)
		}
		var eb errBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil ||
			eb.Error.Code != CodeMethodNotAllowed || eb.Error.Message == "" {
			t.Errorf("PATCH %s: body not the envelope (err=%v, envelope=%+v)", path, err, eb)
		}
		resp.Body.Close()
	}
}

// TestErrorEnvelopeEverywhere is the acceptance gate for the /v1 error
// contract: every way the server can refuse a request — client errors,
// unknown routes, method mismatches, shutdown, overload, degradation,
// deadline kills, panics — answers with the same JSON envelope and a
// stable machine-readable code.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	res := online.NewResolver(testConfig())
	s := NewServer(WrapResolver(res), nil, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	check := func(name, method, path string, rawBody string, wantStatus int, wantCode string) http.Header {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(rawBody))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s: status %d, want %d", name, resp.StatusCode, wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: Content-Type %q, want application/json", name, ct)
		}
		var eb errBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("%s: body is not the envelope: %v", name, err)
		}
		if eb.Error.Code != wantCode || eb.Error.Message == "" {
			t.Fatalf("%s: envelope %+v, want code %q with a message", name, eb, wantCode)
		}
		return resp.Header
	}

	check("malformed JSON", "POST", "/v1/query", "{not json", http.StatusBadRequest, CodeBadRequest)
	check("empty query", "POST", "/v1/query", "{}", http.StatusBadRequest, CodeBadRequest)
	check("negative limit", "POST", "/v1/query", `{"text":"x","limit":-1}`, http.StatusBadRequest, CodeBadRequest)
	check("empty batch", "POST", "/v1/query/batch", `{"queries":[]}`, http.StatusBadRequest, CodeBadRequest)
	check("bad id", "GET", "/v1/entities/zzz", "", http.StatusBadRequest, CodeBadRequest)
	check("missing entity", "GET", "/v1/entities/12345", "", http.StatusNotFound, CodeNotFound)
	check("unknown route", "GET", "/v1/nope", "", http.StatusNotFound, CodeNotFound)
	check("unknown route legacy", "POST", "/frobnicate", "", http.StatusNotFound, CodeNotFound)
	// A retired pre-/v1 alias is just an unknown route now.
	check("retired alias", "POST", "/query", `{"text":"x"}`, http.StatusNotFound, CodeNotFound)
	check("retired alias method", "PUT", "/entities/3", "", http.StatusNotFound, CodeNotFound)

	// Method mismatch on a known path: 405 with Allow, in the envelope.
	hdr := check("method mismatch", "GET", "/v1/query", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	if allow := hdr.Get("Allow"); !strings.Contains(allow, "POST") {
		t.Fatalf("405 Allow header = %q, want POST", allow)
	}
	hdr = check("method mismatch entity", "PUT", "/v1/entities/3", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	if allow := hdr.Get("Allow"); !strings.Contains(allow, "GET") || !strings.Contains(allow, "DELETE") {
		t.Fatalf("405 Allow header = %q, want GET and DELETE", allow)
	}

	// Draining: write refusal and readyz both carry the code.
	s.SetDraining(true)
	hdr = check("draining insert", "POST", "/v1/entities", `{"text":"x"}`, http.StatusServiceUnavailable, CodeDraining)
	if hdr.Get("Retry-After") == "" {
		t.Fatal("draining 503 missing Retry-After")
	}
	check("draining readyz", "GET", "/v1/readyz", "", http.StatusServiceUnavailable, CodeDraining)
	s.SetDraining(false)

	// Admission shed: zero-capacity queue (WriteQueue forced to 1, then
	// occupied) is covered by TestOverloadSheds; here pin the envelope by
	// filling the queue synchronously.
	s2 := NewServer(WrapResolver(online.NewResolver(testConfig())), nil, Options{WriteQueue: 1})
	s2.admit <- struct{}{} // occupy the only token
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err := http.Post(ts2.URL+"/v1/entities", "application/json", strings.NewReader(`{"text":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	var eb errBody
	if json.NewDecoder(resp.Body).Decode(&eb); resp.StatusCode != http.StatusServiceUnavailable || eb.Error.Code != CodeOverloaded {
		t.Fatalf("overload shed: status=%d envelope=%+v", resp.StatusCode, eb)
	}
	resp.Body.Close()

	// Degraded store 503: WAL failure propagates as code "degraded".
	m := faultfs.NewMem()
	dts, _ := newDurableTestServer(t, m, 0)
	m.FailAllSyncs(true)
	req, _ := http.NewRequest("POST", dts.URL+"/v1/entities", strings.NewReader(`{"text":"x"}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	eb = errBody{}
	if json.NewDecoder(resp.Body).Decode(&eb); resp.StatusCode != http.StatusServiceUnavailable || eb.Error.Code != CodeDegraded {
		t.Fatalf("degraded insert: status=%d envelope=%+v", resp.StatusCode, eb)
	}
	resp.Body.Close()

	// Deadline kill: a server with a tiny timeout answers 503 in the
	// envelope (the stall comes from holding the snapshot build hostage is
	// not injectable here, so drive the middleware pair directly).
	release := make(chan struct{})
	defer close(release)
	slow := s.instrument("envelope_slow", timeoutJSON(20*time.Millisecond, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})))
	rec := httptest.NewRecorder()
	slow.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/query", nil))
	eb = errBody{}
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || rec.Code != http.StatusServiceUnavailable || eb.Error.Code != CodeDeadlineExceeded {
		t.Fatalf("timeout: status=%d body=%q err=%v", rec.Code, rec.Body.String(), err)
	}

	// Panic: 500 in the envelope.
	ph := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) { panic("boom") }))
	rec = httptest.NewRecorder()
	ph.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	eb = errBody{}
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || rec.Code != http.StatusInternalServerError || eb.Error.Code != CodeInternal {
		t.Fatalf("panic: status=%d body=%q err=%v", rec.Code, rec.Body.String(), err)
	}
}

// TestQueryBatchEndpoint checks /v1/query/batch answers exactly what the
// single endpoint answers per query, against one snapshot, and rejects
// malformed batches with indexed errors.
func TestQueryBatchEndpoint(t *testing.T) {
	ts, res := newTestServer(t)
	for i := 0; i < 30; i++ {
		res.Insert([]entity.Attribute{{Name: "name", Value: fmt.Sprintf("canon powershot a%d zoom", i)}})
		res.Insert([]entity.Attribute{{Name: "name", Value: fmt.Sprintf("nikon coolpix p%d wide", i)}})
	}

	queries := []map[string]any{
		{"text": "canon powershot a7"},
		{"text": "nikon coolpix p12"},
		{"attrs": map[string]string{"name": "canon zoom a21"}},
	}
	var batch struct {
		Epoch    uint64 `json:"epoch"`
		Entities int    `json:"entities"`
		Results  []struct {
			Candidates []struct {
				ID    int64   `json:"id"`
				Score float64 `json:"score"`
			} `json:"candidates"`
		} `json:"results"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/query/batch", map[string]any{
		"queries": queries, "k": 4,
	}, &batch); code != http.StatusOK {
		t.Fatalf("batch query code=%d", code)
	}
	if len(batch.Results) != len(queries) {
		t.Fatalf("batch returned %d results for %d queries", len(batch.Results), len(queries))
	}
	for i, q := range queries {
		var single struct {
			Candidates []struct {
				ID    int64   `json:"id"`
				Score float64 `json:"score"`
			} `json:"candidates"`
		}
		body := map[string]any{"k": 4}
		for k, v := range q {
			body[k] = v
		}
		if code := doJSON(t, "POST", ts.URL+"/v1/query", body, &single); code != http.StatusOK {
			t.Fatalf("single query %d code=%d", i, code)
		}
		jb, _ := json.Marshal(batch.Results[i].Candidates)
		js, _ := json.Marshal(single.Candidates)
		if !bytes.Equal(jb, js) {
			t.Fatalf("query %d: batch answered %s, single answered %s", i, jb, js)
		}
	}

	// An invalid member is rejected with its index.
	code, eb, _ := doEnvelope(t, "POST", ts.URL+"/v1/query/batch", map[string]any{
		"queries": []map[string]any{{"text": "fine"}, {}},
	})
	if code != http.StatusBadRequest || !strings.Contains(eb.Error.Message, "query 1") {
		t.Fatalf("bad member: code=%d envelope=%+v", code, eb)
	}

	// Oversized batches are refused outright.
	big := make([]map[string]any, DefaultMaxBatch+1)
	for i := range big {
		big[i] = map[string]any{"text": "x"}
	}
	if code, _, _ := doEnvelope(t, "POST", ts.URL+"/v1/query/batch", map[string]any{"queries": big}); code != http.StatusBadRequest {
		t.Fatalf("oversized batch code=%d", code)
	}
}

// TestShardedServingEndToEnd serves a sharded resolver through the same
// handler and checks it answers byte-identically to a single-resolver
// server on the same data, including the batch endpoint, and reports
// per-shard stats.
func TestShardedServingEndToEnd(t *testing.T) {
	single := online.NewResolver(testConfig())
	sharded := online.NewSharded(testConfig(), 4)
	tsS := httptest.NewServer(NewServer(WrapResolver(single), nil, Options{}).Handler())
	defer tsS.Close()
	tsH := httptest.NewServer(NewServer(WrapSharded(sharded), nil, Options{}).Handler())
	defer tsH.Close()

	// Same inserts through both HTTP surfaces: ids are allocated in batch
	// order on both, so they coincide.
	var entities []map[string]any
	for i := 0; i < 60; i++ {
		entities = append(entities, map[string]any{
			"text": fmt.Sprintf("entity %d canon powershot model a%d", i, i%17),
		})
	}
	for _, ts := range []*httptest.Server{tsS, tsH} {
		var out struct {
			IDs []int64 `json:"ids"`
		}
		if code := doJSON(t, "POST", ts.URL+"/v1/entities", map[string]any{"entities": entities}, &out); code != http.StatusOK || len(out.IDs) != len(entities) {
			t.Fatalf("bulk insert: code=%d ids=%d", code, len(out.IDs))
		}
	}
	// Delete the same entity on both.
	for _, ts := range []*httptest.Server{tsS, tsH} {
		if code := doJSON(t, "DELETE", ts.URL+"/v1/entities/7", nil, nil); code != http.StatusOK {
			t.Fatalf("delete: code=%d", code)
		}
	}

	for i := 0; i < 10; i++ {
		body := map[string]any{"text": fmt.Sprintf("canon powershot a%d", i), "k": 5}
		var a, b json.RawMessage
		var outA, outB struct {
			Candidates json.RawMessage `json:"candidates"`
		}
		if code := doJSON(t, "POST", tsS.URL+"/v1/query", body, &outA); code != http.StatusOK {
			t.Fatalf("single query code=%d", code)
		}
		if code := doJSON(t, "POST", tsH.URL+"/v1/query", body, &outB); code != http.StatusOK {
			t.Fatalf("sharded query code=%d", code)
		}
		a, b = outA.Candidates, outB.Candidates
		if !bytes.Equal(a, b) {
			t.Fatalf("query %d: single answered %s, sharded answered %s", i, a, b)
		}
	}

	// Batch endpoint parity across the two servers.
	queries := []map[string]any{
		{"text": "canon powershot a3"}, {"text": "canon a11 model"}, {"text": "entity 42"},
	}
	var batchA, batchB struct {
		Results json.RawMessage `json:"results"`
	}
	if code := doJSON(t, "POST", tsS.URL+"/v1/query/batch", map[string]any{"queries": queries, "k": 3}, &batchA); code != http.StatusOK {
		t.Fatalf("single batch code=%d", code)
	}
	if code := doJSON(t, "POST", tsH.URL+"/v1/query/batch", map[string]any{"queries": queries, "k": 3}, &batchB); code != http.StatusOK {
		t.Fatalf("sharded batch code=%d", code)
	}
	if !bytes.Equal(batchA.Results, batchB.Results) {
		t.Fatalf("batch: single answered %s, sharded answered %s", batchA.Results, batchB.Results)
	}

	// Sharded stats expose the partition layout.
	var stats struct {
		Resolver online.ShardedStats `json:"resolver"`
	}
	if code := doJSON(t, "GET", tsH.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("sharded stats code=%d", code)
	}
	if stats.Resolver.Shards != 4 || len(stats.Resolver.PerShard) != 4 {
		t.Fatalf("sharded stats: %+v", stats.Resolver)
	}
	if stats.Resolver.SizeSkew < 1 {
		t.Fatalf("size skew %v must be >= 1", stats.Resolver.SizeSkew)
	}

	// The sharded snapshot stream loads back into any shard count.
	resp, err := http.Get(tsH.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := online.LoadSharded(resp.Body, 2)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if replica.Len() != sharded.Len() {
		t.Fatalf("replica has %d entities, want %d", replica.Len(), sharded.Len())
	}
}

// TestShardedDurableServing serves a sharded WAL-backed store over HTTP,
// degrades one shard's disk, and checks the whole write path turns 503
// "degraded" while reads keep answering.
func TestShardedDurableServingDegraded(t *testing.T) {
	m := faultfs.NewMem()
	ss, err := online.OpenShardedStore("shardedwal", testConfig(), 3, online.StoreOptions{FS: m})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	s := NewServer(WrapSharded(ss.Resolver()), WrapShardedStore(ss), Options{RequestTimeout: 10 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out struct {
		IDs []int64 `json:"ids"`
	}
	ents := make([]map[string]any, 20)
	for i := range ents {
		ents[i] = map[string]any{"text": fmt.Sprintf("canon powershot a%d", i)}
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/entities", map[string]any{"entities": ents}, &out); code != http.StatusOK {
		t.Fatalf("sharded durable insert: code=%d", code)
	}

	m.FailAllSyncs(true)
	code, eb, _ := doEnvelope(t, "POST", ts.URL+"/v1/entities", map[string]any{"text": "doomed"})
	if code != http.StatusServiceUnavailable || eb.Error.Code != CodeDegraded {
		t.Fatalf("degraded sharded insert: code=%d envelope=%+v", code, eb)
	}
	if code, eb, _ := doEnvelope(t, "GET", ts.URL+"/v1/readyz", nil); code != http.StatusServiceUnavailable || eb.Error.Code != CodeDegraded {
		t.Fatalf("sharded readyz: code=%d envelope=%+v", code, eb)
	}
	var q struct {
		Candidates []struct{ ID int64 } `json:"candidates"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/query", map[string]any{"text": "canon powershot a3"}, &q); code != http.StatusOK || len(q.Candidates) == 0 {
		t.Fatalf("degraded sharded query: code=%d candidates=%v", code, q.Candidates)
	}
	var stats struct {
		Store online.ShardedStoreStats `json:"store"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK || !stats.Store.Degraded || stats.Store.Shards != 3 {
		t.Fatalf("sharded store stats: code=%d %+v", code, stats.Store)
	}
}
