// Package serve is the HTTP serving layer of the online resolver: the
// versioned /v1 JSON API with its uniform error envelope, the
// middleware stack (panic containment, per-endpoint instrumentation,
// request deadlines, bounded write admission) and the route table —
// importable, so tests and tools mount the exact production handler
// without booting the daemon.
//
// Every non-2xx response, including deadline 503s, admission sheds and
// the mux's own 404/405s, carries the same JSON envelope:
//
//	{"error":{"code":"<machine readable>","message":"<human readable>"}}
//
// The pre-/v1 unversioned aliases (e.g. /query for /v1/query) are
// retired: they answer 404 in the standard envelope like any unknown
// path. /v1 is the only serving surface.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/match"
	"erfilter/internal/metrics"
	"erfilter/internal/online"
	"erfilter/internal/query"
	"erfilter/internal/repl"
)

// Snapshot is the immutable query surface of one published epoch —
// satisfied by both *online.Snapshot and *online.ShardedSnapshot. Its
// method set is a superset of match.Snapshot, so any serve.Snapshot
// feeds the match stage directly.
type Snapshot interface {
	Epoch() uint64
	Len() int
	QueryTraced(attrs []entity.Attribute, opt online.QueryOptions) ([]online.Candidate, online.Trace)
	QueryBatch(batch [][]entity.Attribute, opt online.QueryOptions) ([][]online.Candidate, online.Trace)
	Attrs(id int64) ([]entity.Attribute, bool)
}

// Resolver is the serving surface of a resolver (single or sharded).
// The write methods are the volatile-mode path; with a durable Store
// they are bypassed in favor of the store's WAL-backed ones.
type Resolver interface {
	Config() online.Config
	Len() int
	IDs() []int64
	Get(id int64) ([]entity.Attribute, bool)
	Save(w io.Writer) error
	Snapshot() Snapshot
	Stats() any
	RegisterMetrics(reg *metrics.Registry)
	InsertBatch(batch [][]entity.Attribute) ([]int64, error)
	Delete(id int64) (bool, error)
}

// Store is the durable write path (single or sharded): WAL-backed
// mutations, write readiness and durability stats.
type Store interface {
	InsertBatch(batch [][]entity.Attribute) ([]int64, error)
	Delete(id int64) (bool, error)
	Ready() (bool, error)
	Stats() any
	RegisterMetrics(reg *metrics.Registry)
}

// writer is the mutation surface the handlers use — the store when one
// is configured, the resolver itself otherwise.
type writer interface {
	InsertBatch(batch [][]entity.Attribute) ([]int64, error)
	Delete(id int64) (bool, error)
}

// WrapResolver adapts a single *online.Resolver to the serving surface.
func WrapResolver(r *online.Resolver) Resolver { return singleResolver{r} }

type singleResolver struct{ r *online.Resolver }

func (a singleResolver) Config() online.Config                   { return a.r.Config() }
func (a singleResolver) Len() int                                { return a.r.Len() }
func (a singleResolver) IDs() []int64                            { return a.r.IDs() }
func (a singleResolver) Get(id int64) ([]entity.Attribute, bool) { return a.r.Get(id) }
func (a singleResolver) Save(w io.Writer) error                  { return a.r.Save(w) }
func (a singleResolver) Snapshot() Snapshot                      { return a.r.Snapshot() }
func (a singleResolver) Stats() any                              { return a.r.Stats() }
func (a singleResolver) RegisterMetrics(reg *metrics.Registry)   { a.r.RegisterMetrics(reg) }
func (a singleResolver) Delete(id int64) (bool, error)           { return a.r.Delete(id), nil }
func (a singleResolver) InsertBatch(b [][]entity.Attribute) ([]int64, error) {
	return a.r.InsertBatch(b), nil
}

// WrapSharded adapts an *online.ShardedResolver to the serving surface.
func WrapSharded(r *online.ShardedResolver) Resolver { return shardedResolver{r} }

type shardedResolver struct{ r *online.ShardedResolver }

func (a shardedResolver) Config() online.Config                   { return a.r.Config() }
func (a shardedResolver) Len() int                                { return a.r.Len() }
func (a shardedResolver) IDs() []int64                            { return a.r.IDs() }
func (a shardedResolver) Get(id int64) ([]entity.Attribute, bool) { return a.r.Get(id) }
func (a shardedResolver) Save(w io.Writer) error                  { return a.r.Save(w) }
func (a shardedResolver) Snapshot() Snapshot                      { return a.r.Snapshot() }
func (a shardedResolver) Stats() any                              { return a.r.Stats() }
func (a shardedResolver) RegisterMetrics(reg *metrics.Registry)   { a.r.RegisterMetrics(reg) }
func (a shardedResolver) Delete(id int64) (bool, error)           { return a.r.Delete(id), nil }
func (a shardedResolver) InsertBatch(b [][]entity.Attribute) ([]int64, error) {
	return a.r.InsertBatch(b), nil
}

// WrapStore adapts a single *online.Store to the durable write surface.
func WrapStore(s *online.Store) Store { return singleStore{s} }

type singleStore struct{ s *online.Store }

func (a singleStore) InsertBatch(b [][]entity.Attribute) ([]int64, error) { return a.s.InsertBatch(b) }
func (a singleStore) Delete(id int64) (bool, error)                       { return a.s.Delete(id) }
func (a singleStore) Ready() (bool, error)                                { return a.s.Ready() }
func (a singleStore) Stats() any                                          { return a.s.Stats() }
func (a singleStore) RegisterMetrics(reg *metrics.Registry)               { a.s.RegisterMetrics(reg) }

// WrapShardedStore adapts an *online.ShardedStore to the durable write
// surface.
func WrapShardedStore(s *online.ShardedStore) Store { return shardedStore{s} }

type shardedStore struct{ s *online.ShardedStore }

func (a shardedStore) InsertBatch(b [][]entity.Attribute) ([]int64, error) {
	return a.s.InsertBatch(b)
}
func (a shardedStore) Delete(id int64) (bool, error)         { return a.s.Delete(id) }
func (a shardedStore) Ready() (bool, error)                  { return a.s.Ready() }
func (a shardedStore) Stats() any                            { return a.s.Stats() }
func (a shardedStore) RegisterMetrics(reg *metrics.Registry) { a.s.RegisterMetrics(reg) }

// Error codes of the /v1 envelope. Machine-readable and stable; the
// message is for humans and may change.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeOverloaded       = "overloaded"
	CodeDraining         = "draining"
	CodeDegraded         = "degraded"
	CodeInternal         = "internal"
	// CodeTooLarge answers 413: a JSON request body over the server's
	// byte cap, or one NDJSON stream line over the per-line cap.
	CodeTooLarge = "request_too_large"

	// Replication codes: writes and replication reads on a non-leader,
	// queries whose min_epoch the replica has not applied, readiness of
	// a lagging follower, and WAL fetch positions that were trimmed away
	// or never existed on this leader's timeline.
	CodeNotLeader    = "not_leader"
	CodeStaleEpoch   = "stale_epoch"
	CodeStaleReplica = "stale_replica"
	CodeWALTrimmed   = "wal_trimmed"
	CodeWALDiverged  = "wal_diverged"

	// CodeMatchDisabled answers 501 on the match-stage endpoints
	// (/v1/match, /v1/clusters/{id}, mode=match streams) of a server
	// built without Options.Match (or without dirty mode for the
	// cluster reads). The routes are always mounted so clients get a
	// machine-readable "not configured" instead of a generic 404.
	CodeMatchDisabled = "match_disabled"
)

// Options tune a server; the zero value is production-ready.
type Options struct {
	// WriteQueue is the max number of concurrently admitted write
	// requests before shedding with 503 (default 64).
	WriteQueue int
	// RequestTimeout is the per-request deadline for JSON endpoints;
	// /v1/snapshot and /v1/metrics are exempt. 0 disables the deadline.
	RequestTimeout time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// Replication mounts the WAL-shipping endpoints (/v1/wal,
	// /v1/failover, /v1/replica-of, /v1/snapshot?repl=1) and the epoch
	// plumbing over this node; nil serves unreplicated.
	Replication *repl.Node
	// MaxBody caps the request body of every JSON endpoint, in bytes;
	// oversized bodies answer 413 request_too_large (default
	// DefaultMaxBody). The NDJSON stream is exempt — it is bounded per
	// line by MaxLine instead, which is what makes unbounded feeds safe.
	MaxBody int64
	// MaxBatch caps both the query count of one /v1/query/batch request
	// and the resolve unit of the NDJSON stream (default
	// DefaultMaxBatch, the snapshot pool-amortization unit).
	MaxBatch int
	// MaxLine caps one NDJSON input line of /v1/resolve/stream, in
	// bytes (default DefaultMaxLine).
	MaxLine int
	// Match enables the match stage: /v1/match decides one-to-one
	// matches over the filtered candidates, and with Dirty set,
	// /v1/entities additionally returns each insert's duplicate
	// cluster. Nil serves filtering only (the match endpoints answer
	// 501 match_disabled).
	Match *MatchOptions
}

// MatchOptions configure the serving-side match stage.
type MatchOptions struct {
	// Config selects the post-filter scorer, decision threshold and
	// default assignment discipline.
	Config match.Config
	// Dirty turns on dirty-ER mode: the collection is treated as one
	// dirty source, every insert is decided against the pre-insert
	// snapshot, and the duplicate clusters are maintained incrementally
	// (and rebuilt from the resolver's state at startup, which is what
	// makes them survive snapshot load and WAL replay).
	Dirty bool
}

// Server wires a resolver (and optionally a durable store) to the HTTP
// route table with per-endpoint latency histograms, bounded write
// admission and panic containment.
type Server struct {
	res   Resolver
	store Store      // nil in volatile mode
	write writer     // store when durable, res otherwise
	repl  *repl.Node // nil when unreplicated

	matcher *match.Decider // nil unless Options.Match
	dirty   *match.Dirty   // nil unless Options.Match.Dirty

	admit    chan struct{} // bounded write-admission tokens
	start    time.Time
	reg      *metrics.Registry
	eps      map[string]*endpointStats
	panics   *metrics.Counter
	draining atomic.Bool
	timeout  time.Duration
	pprof    bool
	maxBody  int64
	maxBatch int
	maxLine  int
}

// endpointStats are the latency histogram and error counter of one
// endpoint. Count, mean, max and the p50/p95/p99 all derive from the
// histogram — there is no separate counter to drift out of sync.
type endpointStats struct {
	hist   *metrics.Histogram
	errors *metrics.Counter
}

// NewServer builds the serving state over a resolver and, in durable
// mode, its store (pass nil for volatile serving).
func NewServer(res Resolver, store Store, opt Options) *Server {
	if opt.WriteQueue <= 0 {
		opt.WriteQueue = 64
	}
	if opt.MaxBody <= 0 {
		opt.MaxBody = DefaultMaxBody
	}
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = DefaultMaxBatch
	}
	if opt.MaxLine <= 0 {
		opt.MaxLine = DefaultMaxLine
	}
	s := &Server{
		res: res, store: store, repl: opt.Replication, admit: make(chan struct{}, opt.WriteQueue),
		start: time.Now(), reg: metrics.NewRegistry(), eps: map[string]*endpointStats{},
		timeout: opt.RequestTimeout, pprof: opt.Pprof,
		maxBody: opt.MaxBody, maxBatch: opt.MaxBatch, maxLine: opt.MaxLine,
	}
	s.write = res
	if store != nil {
		s.write = store
	}
	s.panics = s.reg.Counter("erserve_panics_total", "Handler panics recovered and answered with 500.", nil)
	s.reg.GaugeFunc("erserve_uptime_seconds", "Seconds since the daemon started.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.GaugeFunc("erserve_write_queue_depth", "Admitted writes currently in flight.", nil,
		func() float64 { return float64(len(s.admit)) })
	s.reg.GaugeFunc("erserve_write_queue_capacity", "Write-admission queue capacity.", nil,
		func() float64 { return float64(cap(s.admit)) })
	s.reg.GaugeFunc("erserve_draining", "1 while shutting down, else 0.", nil,
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	res.RegisterMetrics(s.reg)
	if store != nil {
		store.RegisterMetrics(s.reg)
	}
	if opt.Match != nil {
		s.matcher = match.NewDecider(opt.Match.Config, res.Config())
		s.matcher.RegisterMetrics(s.reg)
		if opt.Match.Dirty {
			s.dirty = match.NewDirty(s.matcher)
			// Recover the cluster state from whatever the resolver holds
			// (snapshot load, WAL replay): decisions are pair-local, so
			// the rebuild lands on the same clusters the incremental path
			// maintained before the restart.
			s.dirty.Rebuild(res.Snapshot(), res.IDs(), online.QueryOptions{})
			s.dirty.RegisterMetrics(s.reg)
		}
	}
	return s
}

// SetDraining flips shutdown mode: /v1/readyz fails and writes are
// refused, while reads keep serving until the listener closes.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Registry exposes the server's metrics registry (the /v1/metrics
// source) for additional process-level series.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// route is one row of the serving surface, registered only at its
// canonical /v1 pattern — the pre-/v1 aliases are retired and fall
// through to the enveloped 404.
type route struct {
	method  string
	pattern string // canonical path under /v1, with {id} wildcards
	name    string // endpoint label for metrics
	h       http.HandlerFunc
	raw     bool // exempt from the JSON request deadline (streaming or must-stay-reachable)
}

func (s *Server) routes() []route {
	rts := s.baseRoutes()
	if s.repl != nil {
		rts = append(rts, s.replRoutes()...)
	}
	return rts
}

func (s *Server) baseRoutes() []route {
	return []route{
		{"POST", "/v1/query", "query", s.handleQuery, false},
		{"POST", "/v1/query/batch", "query_batch", s.handleQueryBatch, false},
		{"POST", "/v1/resolve/stream", "resolve_stream", s.handleResolveStream, true},
		{"POST", "/v1/match", "match", s.handleMatch, false},
		{"GET", "/v1/clusters/{id}", "clusters", s.handleCluster, false},
		{"POST", "/v1/entities", "insert", s.admitWrite(s.handleInsert), false},
		{"GET", "/v1/entities/{id}", "get", s.handleGet, false},
		{"DELETE", "/v1/entities/{id}", "delete", s.admitWrite(s.handleDelete), false},
		{"GET", "/v1/stats", "stats", s.handleStats, false},
		{"GET", "/v1/healthz", "healthz", s.handleHealthz, false},
		{"GET", "/v1/readyz", "readyz", s.handleReadyz, false},
		{"GET", "/v1/snapshot", "snapshot", s.handleSnapshot, true},
		{"GET", "/v1/metrics", "metrics", s.handleMetrics, true},
	}
}

// Handler assembles the route tree. Each JSON endpoint is wrapped as
// instrument(timeoutJSON(handler)) — the per-request deadline sits
// *inside* the instrumentation, so a timed-out request is observed with
// its real duration and its real 503. /v1/snapshot streams the whole
// collection and /v1/metrics must stay reachable while handlers wedge,
// so neither runs under the deadline (the server-level write timeout
// bounds them instead). Unknown paths and method mismatches answer with
// the JSON error envelope like every other error.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		h := http.Handler(rt.h)
		if !rt.raw {
			// Body cap innermost, deadline around it.
			h = timeoutJSON(s.timeout, s.limitBody(h))
		}
		mux.Handle(rt.method+" "+rt.pattern, s.instrument(rt.name, h))
	}
	if s.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	mux.Handle("/", s.instrument("unknown", http.HandlerFunc(s.handleUnknown)))
	return s.recoverPanics(mux)
}

// statusWriter records the response status for the error counters. It
// wraps the *outermost* writer of the middleware chain — outside
// http.TimeoutHandler — so a timed-out request is recorded with the 503
// the client actually received, never the inner handler's phantom 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming handlers
// (/v1/snapshot) can push bytes incrementally; a non-flushing
// underlying writer makes it a no-op instead of a panic.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.NewResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument is the outermost per-endpoint middleware: it observes the
// latency and final status of every request into the endpoint's
// histogram and error counter. It must wrap any timeout middleware, not
// sit inside it — that ordering is what makes deadline kills visible.
func (s *Server) instrument(name string, h http.Handler) http.HandlerFunc {
	st := &endpointStats{
		hist: s.reg.Histogram("erserve_http_request_duration_seconds",
			"End-to-end request latency as the client saw it.",
			metrics.Labels{"endpoint": name}, 1e-9),
		errors: s.reg.Counter("erserve_http_request_errors_total",
			"Requests answered with status >= 400, timeouts included.",
			metrics.Labels{"endpoint": name}),
	}
	s.eps[name] = st
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		h.ServeHTTP(sw, r)
		st.hist.ObserveDuration(time.Since(begin))
		if sw.status >= 400 {
			st.errors.Inc()
		}
	}
}

// timeoutJSON bounds a JSON endpoint with http.TimeoutHandler and makes
// the timeout response the standard envelope: the Content-Type is
// pre-set on the real writer (the timeout path writes the body straight
// through, while the success path copies the inner handler's headers
// over it, so normal responses keep their own type).
func timeoutJSON(d time.Duration, h http.Handler) http.Handler {
	if d <= 0 {
		return h
	}
	th := http.TimeoutHandler(h, d, envelopeBody(CodeDeadlineExceeded, "request deadline exceeded"))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		th.ServeHTTP(w, r)
	})
}

// limitBody caps a JSON endpoint's request body with MaxBytesReader,
// so any read past the byte cap — the decoder's, a proxy copy's —
// fails with *http.MaxBytesError, which decodeJSON maps to 413. The
// raw routes are exempt: /v1/snapshot and /v1/metrics read no body,
// and /v1/resolve/stream is bounded per line, not per body.
func (s *Server) limitBody(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		h.ServeHTTP(w, r)
	})
}

// decodeJSON decodes a request body into v and, on failure, writes the
// enveloped error itself: 413 request_too_large when the body ran past
// the MaxBytesReader cap, 400 bad_request for malformed JSON. Callers
// return immediately on false.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeErr(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Errorf("request body exceeds the %d-byte cap", mbe.Limit))
		return false
	}
	writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("decoding request: %w", err))
	return false
}

// admitWrite gates mutating endpoints behind the bounded admission
// queue: when every token is taken the request is shed immediately with
// 503 + Retry-After instead of queueing unboundedly behind a slow disk.
func (s *Server) admitWrite(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, CodeDraining, errors.New("server is shutting down"))
			return
		}
		select {
		case s.admit <- struct{}{}:
			defer func() { <-s.admit }()
			h(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, CodeOverloaded, errors.New("write queue full"))
		}
	}
}

// recoverPanics is the outermost middleware: a panicking handler answers
// 500 and increments a counter instead of killing the connection (or,
// without net/http's own recovery, the daemon).
func (s *Server) recoverPanics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler { //nolint:errorlint // sentinel by contract
				panic(p)
			}
			s.panics.Inc()
			fmt.Fprintf(os.Stderr, "erserve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			// Best effort: if the handler already wrote headers this is a
			// no-op and the client sees a truncated response.
			writeErr(w, http.StatusInternalServerError, CodeInternal, errors.New("internal error"))
		}()
		h.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errBody is the uniform envelope of every non-2xx response.
type errBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func envelopeBody(code, message string) string {
	var b errBody
	b.Error.Code = code
	b.Error.Message = message
	raw, _ := json.Marshal(b)
	return string(raw)
}

func writeErr(w http.ResponseWriter, status int, code string, err error) {
	var b errBody
	b.Error.Code = code
	b.Error.Message = err.Error()
	writeJSON(w, status, b)
}

// writeWriteError maps a durable-write failure: a degraded store is the
// service being read-only, anything else is unavailability with the
// store's own message. The write that *caused* the degradation returns
// the raw disk error, not ErrDegraded, so the store's readiness is
// consulted as well — by classification time the failure is sticky.
func (s *Server) writeWriteError(w http.ResponseWriter, err error) {
	if errors.Is(err, repl.ErrNotLeader) {
		writeErr(w, http.StatusServiceUnavailable, CodeNotLeader, err)
		return
	}
	code := CodeInternal
	if errors.Is(err, online.ErrDegraded) {
		code = CodeDegraded
	} else if s.store != nil {
		if ok, _ := s.store.Ready(); !ok {
			code = CodeDegraded
		}
	}
	writeErr(w, http.StatusServiceUnavailable, code, err)
}

// entityPayload is the attribute form shared by inserts and queries.
type entityPayload struct {
	Attrs map[string]string `json:"attrs"`
	Text  string            `json:"text"`
}

// attrs converts the payload to a deterministic attribute list. A bare
// "text" value becomes a single attribute named after the resolver's
// best attribute, so it works under both schema settings.
func (p *entityPayload) attrs(cfg online.Config) ([]entity.Attribute, error) {
	if len(p.Attrs) == 0 && p.Text == "" {
		return nil, errors.New(`payload needs "attrs" or "text"`)
	}
	attrs := online.AttrsFromMap(p.Attrs)
	if p.Text != "" {
		name := cfg.BestAttribute
		if name == "" {
			name = "text"
		}
		attrs = append(attrs, entity.Attribute{Name: name, Value: p.Text})
	}
	return attrs, nil
}

// queryBatch validates and converts a request's query list — shared by
// /v1/query/batch and /v1/match, which accept the same "queries" shape
// under the same per-request cap. On failure it writes the enveloped
// 400 itself and returns ok=false.
func (s *Server) queryBatch(w http.ResponseWriter, queries []entityPayload) ([][]entity.Attribute, bool) {
	if len(queries) == 0 {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, errors.New(`"queries" must not be empty`))
		return nil, false
	}
	if len(queries) > s.maxBatch {
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("%d queries exceeds the per-request cap of %d", len(queries), s.maxBatch))
		return nil, false
	}
	cfg := s.res.Config()
	batch := make([][]entity.Attribute, len(queries))
	for i := range queries {
		attrs, err := queries[i].attrs(cfg)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("query %d: %w", i, err))
			return nil, false
		}
		batch[i] = attrs
	}
	return batch, true
}

// defaultQueryLimit caps the serialized candidate list when the request
// does not choose its own limit: an EpsJoin query with a permissive eps
// matches a large fraction of the collection, and without a cap the
// handler would serialize (and the client download) all of it.
// limit == 0 explicitly selects this default; limit < 0 is rejected.
const defaultQueryLimit = 1000

// Defaults of the ingestion bounds (Options.MaxBody/MaxBatch/MaxLine).
const (
	// DefaultMaxBody bounds a JSON request body. Generous for the
	// largest legitimate request — a full batch of queries — while
	// keeping a malicious or misrouted upload from buffering RAM.
	DefaultMaxBody = 8 << 20
	// DefaultMaxBatch bounds one /v1/query/batch request and sizes the
	// NDJSON stream's resolve unit, matching the snapshot layer's
	// pool-amortization batch; larger workloads split into multiple
	// requests (or stream).
	DefaultMaxBatch = 1024
	// DefaultMaxLine bounds one NDJSON record of /v1/resolve/stream.
	DefaultMaxLine = 1 << 20
)

// resolveANN validates the ANN knobs of a query request: "ef" widens
// the beam of an approximate (HNSW) index, "approx": false forces the
// exact brute-force oracle for that one query. Both are no-ops on an
// already-exact index, so clients can send them unconditionally.
func resolveANN(ef int, approx *bool) (online.QueryOptions, error) {
	if ef < 0 {
		return online.QueryOptions{}, fmt.Errorf("ef must be >= 0, got %d", ef)
	}
	return online.QueryOptions{Ef: ef, Exact: approx != nil && !*approx}, nil
}

// resolveLimit validates the request's candidate cap: negative is a
// client error, zero means "use the default".
func resolveLimit(limit int) (int, error) {
	if limit < 0 {
		return 0, fmt.Errorf("limit must be >= 0, got %d", limit)
	}
	if limit == 0 {
		return defaultQueryLimit, nil
	}
	return limit, nil
}

type candJSON struct {
	ID    int64   `json:"id"`
	Score float64 `json:"score"`
}

type traceJSON struct {
	Epoch      uint64 `json:"epoch"`
	EncodeUS   int64  `json:"encode_us"`
	SearchUS   int64  `json:"search_us"`
	Candidates int    `json:"candidates"`
}

func candList(cands []online.Candidate) []candJSON {
	out := make([]candJSON, len(cands))
	for i, c := range cands {
		out[i] = candJSON{ID: c.ID, Score: c.Score}
	}
	return out
}

// applyWhere parses a request's predicate DSL (empty src is a no-op)
// and folds it into the query options and serialization limit: the
// attribute predicate and score floor push down into the engine's
// pre-cut filter, `top N` overrides the JSON "limit" field, and
// `explain` asks for the normalized plan, implying the trace section.
func applyWhere(src string, opt *online.QueryOptions, limit int) (newLimit int, plan string, explain bool, err error) {
	if src == "" {
		return limit, "", false, nil
	}
	q, err := query.Parse(src)
	if err != nil {
		return 0, "", false, err
	}
	if q.Where != nil {
		opt.Predicate = q.Match
	}
	opt.MinScore = q.MinScore
	if q.Top > 0 {
		limit = q.Top
	}
	if q.Explain {
		plan = q.String()
	}
	return limit, plan, q.Explain, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		entityPayload
		requestOptions
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	ro, ok := s.resolveOptions(w, req.requestOptions)
	if !ok {
		return
	}
	attrs, err := req.attrs(s.res.Config())
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	s.tagEpoch(w)
	snap := s.res.Snapshot()
	cands, tr := snap.QueryTraced(attrs, ro.opt)
	truncated := len(cands) > ro.limit
	if truncated {
		cands = cands[:ro.limit]
	}
	out := struct {
		Epoch      uint64     `json:"epoch"`
		Entities   int        `json:"entities"`
		Candidates []candJSON `json:"candidates"`
		Truncated  bool       `json:"truncated,omitempty"`
		Plan       string     `json:"plan,omitempty"`
		Trace      *traceJSON `json:"trace,omitempty"`
	}{
		Epoch: snap.Epoch(), Entities: snap.Len(),
		Candidates: candList(cands), Truncated: truncated, Plan: ro.plan,
	}
	if req.Trace || ro.explain {
		out.Trace = &traceJSON{
			Epoch:      tr.Epoch,
			EncodeUS:   tr.Encode.Microseconds(),
			SearchUS:   tr.Search.Microseconds(),
			Candidates: tr.Candidates,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleQueryBatch answers many queries in one request against one
// consistent snapshot, amortizing the per-query pool checkout (and, on
// a sharded resolver, paying one scatter for the whole batch).
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Queries []entityPayload `json:"queries"`
		requestOptions
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	ro, ok := s.resolveOptions(w, req.requestOptions)
	if !ok {
		return
	}
	batch, ok := s.queryBatch(w, req.Queries)
	if !ok {
		return
	}
	s.tagEpoch(w)
	snap := s.res.Snapshot()
	results, tr := snap.QueryBatch(batch, ro.opt)
	type result struct {
		Candidates []candJSON `json:"candidates"`
		Truncated  bool       `json:"truncated,omitempty"`
	}
	out := struct {
		Epoch    uint64     `json:"epoch"`
		Entities int        `json:"entities"`
		Results  []result   `json:"results"`
		Plan     string     `json:"plan,omitempty"`
		Trace    *traceJSON `json:"trace,omitempty"`
	}{Epoch: snap.Epoch(), Entities: snap.Len(), Results: make([]result, len(results)), Plan: ro.plan}
	for i, cands := range results {
		truncated := len(cands) > ro.limit
		if truncated {
			cands = cands[:ro.limit]
		}
		out.Results[i] = result{Candidates: candList(cands), Truncated: truncated}
	}
	if req.Trace || ro.explain {
		out.Trace = &traceJSON{
			Epoch:      tr.Epoch,
			EncodeUS:   tr.Encode.Microseconds(),
			SearchUS:   tr.Search.Microseconds(),
			Candidates: tr.Candidates,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req struct {
		entityPayload
		Entities []entityPayload `json:"entities"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	cfg := s.res.Config()
	var batch [][]entity.Attribute
	add := func(p *entityPayload) error {
		attrs, err := p.attrs(cfg)
		if err != nil {
			return err
		}
		batch = append(batch, attrs)
		return nil
	}
	if len(req.Entities) > 0 {
		for i := range req.Entities {
			if err := add(&req.Entities[i]); err != nil {
				writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("entity %d: %w", i, err))
				return
			}
		}
	} else if err := add(&req.entityPayload); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	if s.dirty != nil {
		// Dirty-ER mode: each entity is decided against the pre-insert
		// snapshot and folded into the duplicate clusters, so the
		// response can name its own cluster.
		decs, err := s.dirty.InsertBatch(s.write,
			func() match.Snapshot { return s.res.Snapshot() }, batch, online.QueryOptions{})
		if err != nil {
			s.writeWriteError(w, err)
			return
		}
		ids := make([]int64, len(decs))
		results := make([]insertResultJSON, len(decs))
		for i, d := range decs {
			ids[i] = d.ID
			results[i] = insertResultJSON{ID: d.ID, Cluster: d.Cluster, Matches: decList(d.Matches)}
		}
		s.tagEpoch(w)
		writeJSON(w, http.StatusOK, map[string]any{
			"ids": ids, "epoch": s.res.Snapshot().Epoch(), "results": results,
		})
		return
	}
	ids, err := s.write.InsertBatch(batch)
	if err != nil {
		s.writeWriteError(w, err)
		return
	}
	s.tagEpoch(w)
	writeJSON(w, http.StatusOK, map[string]any{"ids": ids, "epoch": s.res.Snapshot().Epoch()})
}

func pathID(r *http.Request) (int64, error) {
	return strconv.ParseInt(r.PathValue("id"), 10, 64)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	attrs, ok := s.res.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("entity %d not resident", id))
		return
	}
	type attr struct {
		Name  string `json:"name"`
		Value string `json:"value"`
	}
	out := struct {
		ID    int64  `json:"id"`
		Attrs []attr `json:"attrs"`
	}{ID: id, Attrs: make([]attr, len(attrs))}
	for i, a := range attrs {
		out.Attrs[i] = attr{Name: a.Name, Value: a.Value}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	ok, err := s.write.Delete(id)
	if err != nil {
		s.writeWriteError(w, err)
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("entity %d not resident", id))
		return
	}
	if s.dirty != nil {
		s.dirty.Delete(id)
	}
	s.tagEpoch(w)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id, "epoch": s.res.Snapshot().Epoch()})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("repl") == "1" {
		if s.repl == nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, errors.New("replication not enabled"))
			return
		}
		s.handleReplSnapshot(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := s.res.Save(w); err != nil {
		// Headers are already sent; the truncated stream fails the
		// client-side checksum, so the replica never loads partial state.
		fmt.Fprintln(os.Stderr, "erserve: streaming snapshot:", err)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.start)
	type ep struct {
		Count     int64   `json:"count"`
		Errors    int64   `json:"errors"`
		MeanUS    float64 `json:"mean_us"`
		P50US     float64 `json:"p50_us"`
		P95US     float64 `json:"p95_us"`
		P99US     float64 `json:"p99_us"`
		MaxUS     float64 `json:"max_us"`
		PerSecond float64 `json:"per_second"`
	}
	eps := map[string]ep{}
	for name, st := range s.eps {
		snap := st.hist.Snapshot()
		e := ep{Count: snap.Count, Errors: st.errors.Value(), MaxUS: float64(snap.Max) / 1e3}
		if snap.Count > 0 {
			e.MeanUS = snap.Mean() / 1e3
			e.P50US = float64(snap.Quantile(0.50)) / 1e3
			e.P95US = float64(snap.Quantile(0.95)) / 1e3
			e.P99US = float64(snap.Quantile(0.99)) / 1e3
			e.PerSecond = float64(snap.Count) / uptime.Seconds()
		}
		eps[name] = e
	}
	out := map[string]any{
		"resolver":  s.res.Stats(),
		"endpoints": eps,
		"uptime_s":  uptime.Seconds(),
		"panics":    s.panics.Value(),
		"write_queue": map[string]int{
			"depth": len(s.admit), "capacity": cap(s.admit),
		},
	}
	if s.store != nil {
		out["store"] = s.store.Stats()
	}
	if s.matcher != nil {
		out["match"] = s.matcher.Stats()
	}
	if s.dirty != nil {
		out["clusters"] = s.dirty.Stats()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is pure liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is write readiness: not ready while draining for
// shutdown or while the store is degraded to read-only after a WAL disk
// failure. Load balancers should route writes only to ready replicas;
// reads keep working either way.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.repl != nil {
		// The role rides even on 503s: a proxy probing not-ready replicas
		// still learns which one leads.
		w.Header().Set(repl.HeaderRole, s.repl.Role().String())
	}
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, CodeDraining, errors.New("draining: shutting down"))
		return
	}
	if s.store != nil {
		if ok, reason := s.store.Ready(); !ok {
			code := readyCode(reason)
			msg := fmt.Errorf("not ready: %w", reason)
			if code == CodeDegraded {
				msg = fmt.Errorf("degraded read-only: %w", reason)
			}
			writeErr(w, http.StatusServiceUnavailable, code, msg)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ready")
}

// handleUnknown is the fallback for everything the route table does not
// serve: a method mismatch on a known path answers 405 with an Allow
// header, anything else 404 — both in the standard envelope. (The
// catch-all registration means the mux's own text 405/404 bodies are
// never emitted.)
func (s *Server) handleUnknown(w http.ResponseWriter, r *http.Request) {
	if allow := s.allowedMethods(r.URL.Path); len(allow) > 0 {
		w.Header().Set("Allow", strings.Join(allow, ", "))
		writeErr(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Errorf("method %s not allowed on %s", r.Method, r.URL.Path))
		return
	}
	writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("no such endpoint: %s %s", r.Method, r.URL.Path))
}

// allowedMethods reports which methods the route table serves at path.
func (s *Server) allowedMethods(path string) []string {
	var allow []string
	for _, rt := range s.routes() {
		if pathMatches(rt.pattern, path) {
			allow = append(allow, rt.method)
		}
	}
	return allow
}

// pathMatches tests a concrete request path against a route pattern,
// treating {name} segments as single-segment wildcards.
func pathMatches(pattern, path string) bool {
	ps := strings.Split(pattern, "/")
	qs := strings.Split(path, "/")
	if len(ps) != len(qs) {
		return false
	}
	for i := range ps {
		if strings.HasPrefix(ps[i], "{") && strings.HasSuffix(ps[i], "}") {
			if qs[i] == "" {
				return false
			}
			continue
		}
		if ps[i] != qs[i] {
			return false
		}
	}
	return true
}

// handleMetrics serves the Prometheus text exposition of everything the
// process measures: endpoint latency histograms, resolver telemetry
// and, in durable mode, the WAL's fsync and group-commit distributions.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteText(w); err != nil {
		fmt.Fprintln(os.Stderr, "erserve: writing /metrics:", err)
	}
}
