package serve

// Tests of the bounded-ingestion surface: the per-request body caps,
// the batch cap, the NDJSON resolve stream (against every serving
// topology — single, sharded, proxied), the proxy's hop-by-hop header
// hygiene, and the predicate DSL on the query endpoints. The bulk gate
// at the bottom (TestBulkStreamGate) is the `make bulk` target: a
// 100k-row feed against a live index must complete with bounded heap
// growth and answer byte-identically to /v1/query/batch.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/online"
)

// topo is one serving topology under test; all three answer the same
// HTTP surface over the same data.
type topo struct {
	name string
	url  string
}

// newTopologies builds a single-resolver server, a 3-way sharded server
// and a proxy fronting the single server, all under the same ingestion
// caps, and loads the same entities into both resolvers.
func newTopologies(t *testing.T, opt Options, entities []map[string]any) []topo {
	t.Helper()
	single := online.NewResolver(testConfig())
	sharded := online.NewSharded(testConfig(), 3)
	tsS := httptest.NewServer(NewServer(WrapResolver(single), nil, opt).Handler())
	t.Cleanup(tsS.Close)
	tsH := httptest.NewServer(NewServer(WrapSharded(sharded), nil, opt).Handler())
	t.Cleanup(tsH.Close)
	if len(entities) > 0 {
		for _, ts := range []*httptest.Server{tsS, tsH} {
			var out struct {
				IDs []int64 `json:"ids"`
			}
			if code := doJSON(t, "POST", ts.URL+"/v1/entities", map[string]any{"entities": entities}, &out); code != http.StatusOK || len(out.IDs) != len(entities) {
				t.Fatalf("seeding entities: code=%d ids=%d", code, len(out.IDs))
			}
		}
	}
	proxy, err := NewProxy([]string{tsS.URL}, ProxyOptions{ProbeEvery: time.Hour, MaxBody: opt.MaxBody})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	t.Cleanup(proxy.Close)
	tsP := httptest.NewServer(proxy.Handler())
	t.Cleanup(tsP.Close)
	return []topo{{"single", tsS.URL}, {"sharded", tsH.URL}, {"proxied", tsP.URL}}
}

// streamLine is any line of a resolve-stream response; exactly one of
// Candidates, Error or Done is meaningful per line.
type streamLine struct {
	I          int             `json:"i"`
	Candidates json.RawMessage `json:"candidates"`
	Truncated  bool            `json:"truncated"`
	Error      *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
	Done    bool   `json:"done"`
	Records int    `json:"records"`
	Results int    `json:"results"`
	Errors  int    `json:"errors"`
	Plan    string `json:"plan"`
}

// doStream posts an NDJSON feed and decodes every response line. The
// final line must be the summary.
func doStream(t *testing.T, url, feed string) (lines []streamLine, summary streamLine) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(feed))
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream: code=%d body=%s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream: Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var l streamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("stream: bad response line %q: %v", sc.Bytes(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream: reading response: %v", err)
	}
	if len(lines) == 0 || !lines[len(lines)-1].Done {
		t.Fatalf("stream: response did not end in a summary line: %+v", lines)
	}
	return lines[:len(lines)-1], lines[len(lines)-1]
}

// TestOversizedIngestion drives every bound past its cap on every
// topology: an oversized JSON body answers 413 in the uniform envelope
// (from the backend directly and from the proxy's own cap), an
// oversized batch answers 400, and an oversized NDJSON line terminates
// the stream with a request_too_large error line — after the records
// before it already answered — and still emits the summary.
func TestOversizedIngestion(t *testing.T) {
	opt := Options{MaxBody: 4096, MaxBatch: 4, MaxLine: 256, RequestTimeout: 10 * time.Second}
	seed := []map[string]any{{"text": "canon powershot a40"}, {"text": "nikon coolpix 885"}}
	for _, tp := range newTopologies(t, opt, seed) {
		t.Run(tp.name, func(t *testing.T) {
			// Within-cap requests still work.
			var q struct {
				Candidates json.RawMessage `json:"candidates"`
			}
			if code := doJSON(t, "POST", tp.url+"/v1/query", map[string]any{"text": "canon powershot"}, &q); code != http.StatusOK {
				t.Fatalf("small query: code=%d", code)
			}

			// Oversized bodies: every JSON endpoint answers 413 in the
			// envelope, read and write paths alike.
			huge := strings.Repeat("x", int(opt.MaxBody)+1024)
			for _, ep := range []string{"/v1/query", "/v1/query/batch", "/v1/entities"} {
				code, eb, _ := doEnvelope(t, "POST", tp.url+ep, map[string]any{"text": huge})
				if code != http.StatusRequestEntityTooLarge || eb.Error.Code != CodeTooLarge {
					t.Fatalf("%s oversized body: code=%d envelope=%+v", ep, code, eb)
				}
			}

			// Oversized batches: one query over the cap is a 400.
			over := make([]map[string]any, opt.MaxBatch+1)
			for i := range over {
				over[i] = map[string]any{"text": "x"}
			}
			code, eb, _ := doEnvelope(t, "POST", tp.url+"/v1/query/batch", map[string]any{"queries": over})
			if code != http.StatusBadRequest || !strings.Contains(eb.Error.Message, "cap") {
				t.Fatalf("oversized batch: code=%d envelope=%+v", code, eb)
			}
			within := over[:opt.MaxBatch]
			if code := doJSON(t, "POST", tp.url+"/v1/query/batch", map[string]any{"queries": within}, nil); code != http.StatusOK {
				t.Fatalf("full batch at the cap: code=%d", code)
			}

			// Oversized NDJSON line: the record before it still answers,
			// then a request_too_large error line, then the summary.
			feed := `{"text":"canon powershot"}` + "\n" +
				`{"text":"` + strings.Repeat("y", opt.MaxLine+64) + `"}` + "\n"
			lines, sum := doStream(t, tp.url+"/v1/resolve/stream", feed)
			if len(lines) != 2 {
				t.Fatalf("oversized line: got %d lines before summary, want 2: %+v", len(lines), lines)
			}
			if lines[0].Candidates == nil || lines[0].I != 0 {
				t.Fatalf("oversized line: first record did not resolve: %+v", lines[0])
			}
			if lines[1].Error == nil || lines[1].Error.Code != CodeTooLarge {
				t.Fatalf("oversized line: want %s error line, got %+v", CodeTooLarge, lines[1])
			}
			if sum.Records != 1 || sum.Results != 1 || sum.Errors != 1 {
				t.Fatalf("oversized line: summary %+v", sum)
			}
		})
	}
}

// TestResolveStreamMatchesBatch checks per-record byte identity between
// the NDJSON stream and /v1/query/batch on every topology, with and
// without a pushed-down predicate.
func TestResolveStreamMatchesBatch(t *testing.T) {
	var entities []map[string]any
	for i := 0; i < 40; i++ {
		entities = append(entities, map[string]any{
			"attrs": map[string]string{
				"text": fmt.Sprintf("canon powershot a%d model %d", i%11, i%7),
				"city": []string{"berlin", "paris", "tokyo"}[i%3],
			},
		})
	}
	queries := make([]map[string]any, 10)
	var feed strings.Builder
	for i := range queries {
		queries[i] = map[string]any{"text": fmt.Sprintf("canon powershot a%d", i)}
		line, _ := json.Marshal(queries[i])
		feed.Write(line)
		feed.WriteByte('\n')
	}
	wheres := []string{"", `city = "berlin" score >= 0.01 top 3`}
	for _, tp := range newTopologies(t, Options{RequestTimeout: 10 * time.Second}, entities) {
		for _, where := range wheres {
			name := tp.name
			if where != "" {
				name += "/where"
			}
			t.Run(name, func(t *testing.T) {
				var batch struct {
					Results []struct {
						Candidates json.RawMessage `json:"candidates"`
						Truncated  bool            `json:"truncated"`
					} `json:"results"`
				}
				body := map[string]any{"queries": queries, "k": 4, "where": where}
				if code := doJSON(t, "POST", tp.url+"/v1/query/batch", body, &batch); code != http.StatusOK {
					t.Fatalf("batch: code=%d", code)
				}
				lines, sum := doStream(t, tp.url+"/v1/resolve/stream?k=4&where="+url.QueryEscape(where), feed.String())
				if sum.Records != len(queries) || sum.Results != len(queries) || sum.Errors != 0 {
					t.Fatalf("summary %+v for %d queries", sum, len(queries))
				}
				if len(lines) != len(batch.Results) {
					t.Fatalf("stream answered %d records, batch %d", len(lines), len(batch.Results))
				}
				for j, l := range lines {
					if l.I != j || l.Error != nil {
						t.Fatalf("record %d: unexpected line %+v", j, l)
					}
					if !bytes.Equal(l.Candidates, batch.Results[j].Candidates) {
						t.Fatalf("record %d: stream answered %s, batch answered %s", j, l.Candidates, batch.Results[j].Candidates)
					}
					if l.Truncated != batch.Results[j].Truncated {
						t.Fatalf("record %d: truncated diverged", j)
					}
				}
			})
		}
	}
}

// TestResolveStreamRecordErrors checks that one bad record costs only
// that record: the stream reports it in place and keeps resolving.
func TestResolveStreamRecordErrors(t *testing.T) {
	ts, res := newTestServer(t)
	res.InsertBatch([][]entity.Attribute{
		{{Name: "text", Value: "canon powershot a40"}},
	})
	feed := `{"text":"canon a1"}` + "\n" +
		"not json\n" +
		"\n" + // blank lines are skipped, not counted
		"{}\n" + // neither attrs nor text
		`{"text":"canon a2"}` + "\n"
	lines, sum := doStream(t, ts.URL+"/v1/resolve/stream", feed)
	if len(lines) != 4 {
		t.Fatalf("got %d lines before summary, want 4: %+v", len(lines), lines)
	}
	wantErr := map[int]bool{1: true, 2: true}
	for _, l := range lines {
		if wantErr[l.I] != (l.Error != nil) {
			t.Fatalf("record %d: error=%v, want error=%v", l.I, l.Error != nil, wantErr[l.I])
		}
		if l.Error != nil && l.Error.Code != CodeBadRequest {
			t.Fatalf("record %d: error code %q", l.I, l.Error.Code)
		}
	}
	if sum.Records != 4 || sum.Results != 2 || sum.Errors != 2 {
		t.Fatalf("summary %+v", sum)
	}

	// Bad URL parameters are refused up front with the JSON envelope,
	// before any streaming starts.
	for _, qs := range []string{"?k=x", "?eps=x", "?limit=-1", "?where=" + url.QueryEscape(`city =`)} {
		code, eb, _ := doEnvelope(t, "POST", ts.URL+"/v1/resolve/stream"+qs, nil)
		if code != http.StatusBadRequest || eb.Error.Code != CodeBadRequest {
			t.Fatalf("%s: code=%d envelope=%+v", qs, code, eb)
		}
	}

	// explain rides the summary line.
	_, sum = doStream(t, ts.URL+"/v1/resolve/stream?where="+url.QueryEscape(`score >= 0.5 explain`), `{"text":"canon"}`)
	if sum.Plan == "" {
		t.Fatalf("explain stream: summary has no plan: %+v", sum)
	}
}

// TestProxyHeaderHygiene checks that the proxy strips hop-by-hop
// headers in both directions — the RFC 9110 §7.6.1 set and anything the
// Connection header names — while end-to-end headers pass through.
func TestProxyHeaderHygiene(t *testing.T) {
	var mu sync.Mutex
	var got http.Header
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/readyz" {
			fmt.Fprintln(w, "ready")
			return
		}
		mu.Lock()
		got = r.Header.Clone()
		mu.Unlock()
		h := w.Header()
		h.Set("Keep-Alive", "timeout=5")
		h.Set("Proxy-Authenticate", "Basic")
		h.Set("Upgrade", "h2c")
		h.Set("X-Backend", "kept")
		h.Set("Content-Type", "application/json")
		fmt.Fprintln(w, "{}")
	}))
	defer backend.Close()
	proxy, err := NewProxy([]string{backend.URL}, ProxyOptions{ProbeEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// /v1/stats and friends are the proxy's own endpoints; an entity get
	// goes through the forwarder.
	req := httptest.NewRequest(http.MethodGet, "/v1/entities/1", nil)
	req.Header.Set("Connection", "X-Hop, Keep-Alive")
	req.Header.Set("X-Hop", "secret")
	req.Header.Set("Keep-Alive", "timeout=5")
	req.Header.Set("Te", "trailers")
	req.Header.Set("Proxy-Connection", "keep-alive")
	req.Header.Set("X-End", "kept")
	rec := httptest.NewRecorder()
	proxy.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("proxied request: code=%d body=%s", rec.Code, rec.Body)
	}

	mu.Lock()
	defer mu.Unlock()
	if got == nil {
		t.Fatal("backend never saw the request")
	}
	for _, h := range []string{"X-Hop", "Keep-Alive", "Te", "Proxy-Connection", "Connection"} {
		if v := got.Get(h); v != "" {
			t.Errorf("backend received hop-by-hop header %s: %q", h, v)
		}
	}
	if got.Get("X-End") != "kept" {
		t.Errorf("backend lost end-to-end header X-End: %q", got.Get("X-End"))
	}
	for _, h := range []string{"Keep-Alive", "Proxy-Authenticate", "Upgrade"} {
		if v := rec.Header().Get(h); v != "" {
			t.Errorf("client received hop-by-hop response header %s: %q", h, v)
		}
	}
	if rec.Header().Get("X-Backend") != "kept" {
		t.Errorf("client lost end-to-end response header X-Backend: %q", rec.Header().Get("X-Backend"))
	}
}

// TestStripHopByHop covers the full strip matrix on the pure function.
func TestStripHopByHop(t *testing.T) {
	h := http.Header{}
	h.Set("X-A", "1")
	h.Set("X-B", "2")
	h.Set("X-C", "3")
	for _, name := range hopHeaders {
		h.Set(name, "v")
	}
	h.Set("Connection", "x-a , x-b,") // names X-A and X-B hop-by-hop

	stripHopByHop(h)
	for _, name := range append([]string{"X-A", "X-B"}, hopHeaders...) {
		if v := h.Get(name); v != "" {
			t.Errorf("%s survived: %q", name, v)
		}
	}
	if h.Get("X-C") != "3" {
		t.Errorf("end-to-end X-C was stripped")
	}
}

// TestQueryWhereEndpoint exercises the DSL on /v1/query: predicate
// filtering before the cut, `top` overriding the serialization limit,
// `explain` returning the normalized plan (with the trace section
// implied), score floors, and parse failures as 400s.
func TestQueryWhereEndpoint(t *testing.T) {
	var entities []map[string]any
	for i := 0; i < 30; i++ {
		entities = append(entities, map[string]any{
			"attrs": map[string]string{
				"text": fmt.Sprintf("canon powershot a%d kit", i%5),
				"city": []string{"berlin", "paris"}[i%2],
			},
		})
	}
	tps := newTopologies(t, Options{RequestTimeout: 10 * time.Second}, entities)
	ts := tps[0] // the DSL path is topology-independent (proved above); assert semantics once

	type queryOut struct {
		Candidates []struct {
			ID    int64   `json:"id"`
			Score float64 `json:"score"`
		} `json:"candidates"`
		Truncated bool            `json:"truncated"`
		Plan      string          `json:"plan"`
		Trace     json.RawMessage `json:"trace"`
	}
	cityOf := func(id int64) string {
		var e struct {
			Attrs []struct {
				Name  string `json:"name"`
				Value string `json:"value"`
			} `json:"attrs"`
		}
		if code := doJSON(t, "GET", fmt.Sprintf("%s/v1/entities/%d", ts.url, id), nil, &e); code != http.StatusOK {
			t.Fatalf("get %d: code=%d", id, code)
		}
		for _, a := range e.Attrs {
			if a.Name == "city" {
				return a.Value
			}
		}
		return ""
	}

	// Predicate filtering: every candidate satisfies the clause, and the
	// filter widened the search rather than post-filtering the top k
	// (with k=4 over two interleaved cities, a post-hoc cut would lose
	// matches; the paris entities are still found).
	var out queryOut
	if code := doJSON(t, "POST", ts.url+"/v1/query", map[string]any{
		"text": "canon powershot a1", "k": 4, "where": `city = "paris"`,
	}, &out); code != http.StatusOK {
		t.Fatalf("where query: code=%d", code)
	}
	if len(out.Candidates) == 0 {
		t.Fatal("where query: no candidates")
	}
	for _, c := range out.Candidates {
		if cityOf(c.ID) != "paris" {
			t.Fatalf("candidate %d leaked through the predicate: city=%q", c.ID, cityOf(c.ID))
		}
	}

	// Score floor: every returned score respects it.
	if code := doJSON(t, "POST", ts.url+"/v1/query", map[string]any{
		"text": "canon powershot a1", "k": 10, "where": `score >= 0.5`,
	}, &out); code != http.StatusOK {
		t.Fatalf("score query: code=%d", code)
	}
	for _, c := range out.Candidates {
		if c.Score < 0.5 {
			t.Fatalf("candidate %d under the floor: %v", c.ID, c.Score)
		}
	}

	// top N overrides the JSON limit and marks truncation.
	if code := doJSON(t, "POST", ts.url+"/v1/query", map[string]any{
		"text": "canon powershot a1", "k": 10, "limit": 100, "where": `top 1`,
	}, &out); code != http.StatusOK {
		t.Fatalf("top query: code=%d", code)
	}
	if len(out.Candidates) != 1 || !out.Truncated {
		t.Fatalf("top 1: got %d candidates truncated=%v", len(out.Candidates), out.Truncated)
	}

	// explain returns the normalized plan and implies the trace section.
	if code := doJSON(t, "POST", ts.url+"/v1/query", map[string]any{
		"text": "canon powershot a1", "where": `city = "paris" or not city ^= "ber" explain`,
	}, &out); code != http.StatusOK {
		t.Fatalf("explain query: code=%d", code)
	}
	if out.Plan == "" || out.Trace == nil {
		t.Fatalf("explain: plan=%q trace=%s", out.Plan, out.Trace)
	}

	// Parse failures are client errors in the envelope, on both query
	// endpoints.
	for _, body := range []map[string]any{
		{"text": "x", "where": `city =`},
		{"queries": []map[string]any{{"text": "x"}}, "where": `top 0`},
	} {
		ep := "/v1/query"
		if body["queries"] != nil {
			ep = "/v1/query/batch"
		}
		code, eb, _ := doEnvelope(t, "POST", ts.url+ep, body)
		if code != http.StatusBadRequest || eb.Error.Code != CodeBadRequest {
			t.Fatalf("%s bad where: code=%d envelope=%+v", ep, code, eb)
		}
	}
}

// bulkRow is the deterministic feed generator shared by the stream and
// its batch cross-check.
func bulkRow(i int) map[string]any {
	return map[string]any{"text": fmt.Sprintf("canon powershot a%d model %d zoom lens", i%57, i%23)}
}

// TestBulkStreamGate is the `make bulk` acceptance gate: a 100k-row
// NDJSON feed (generated on the fly through a pipe, never materialized)
// against a live index must stream to completion with bounded server
// heap growth, and a deterministic sample of its answers must be
// byte-identical to /v1/query/batch over the same queries.
func TestBulkStreamGate(t *testing.T) {
	rows := 100_000
	if testing.Short() {
		rows = 2_000
	}
	res := online.NewResolver(testConfig())
	var seed [][]entity.Attribute
	for i := 0; i < 2_000; i++ {
		seed = append(seed, []entity.Attribute{
			{Name: "text", Value: fmt.Sprintf("canon powershot a%d model %d kit", i%57, i%29)},
		})
	}
	res.InsertBatch(seed)
	ts := httptest.NewServer(NewServer(WrapResolver(res), nil, Options{RequestTimeout: 10 * time.Minute}).Handler())
	defer ts.Close()

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	pr, pw := io.Pipe()
	go func() {
		bw := bufio.NewWriterSize(pw, 64<<10)
		enc := json.NewEncoder(bw)
		for i := 0; i < rows; i++ {
			if err := enc.Encode(bulkRow(i)); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		bw.Flush()
		pw.Close()
	}()
	resp, err := http.Post(ts.URL+"/v1/resolve/stream?k=4", "application/x-ndjson", pr)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: code=%d", resp.StatusCode)
	}

	const sampleEvery = 997
	sampled := map[int]streamLine{}
	var results int
	var sum *streamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		var l streamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Bytes(), err)
		}
		switch {
		case l.Done:
			sum = &l
		case l.Error != nil:
			t.Fatalf("record %d failed: %+v", l.I, l.Error)
		default:
			if l.I != results {
				t.Fatalf("records out of order: got i=%d at position %d", l.I, results)
			}
			results++
			if l.I%sampleEvery == 0 {
				sampled[l.I] = l
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if sum == nil || sum.Records != rows || sum.Results != rows || sum.Errors != 0 || results != rows {
		t.Fatalf("summary %+v, saw %d results, want %d clean records", sum, results, rows)
	}

	// Bounded memory: O(batch), not O(feed). The bar is far above one
	// batch's working set and far below a buffered 100k-row feed.
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if m1.HeapAlloc > m0.HeapAlloc && m1.HeapAlloc-m0.HeapAlloc > 64<<20 {
		t.Fatalf("heap grew %d bytes across the stream; the feed is being buffered", m1.HeapAlloc-m0.HeapAlloc)
	}

	// Byte-identity: replay the sampled rows through /v1/query/batch.
	var idx []int
	var queries []map[string]any
	for i := 0; i < rows; i += sampleEvery {
		idx = append(idx, i)
		queries = append(queries, bulkRow(i))
	}
	var batch struct {
		Results []struct {
			Candidates json.RawMessage `json:"candidates"`
		} `json:"results"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/query/batch", map[string]any{"queries": queries, "k": 4}, &batch); code != http.StatusOK {
		t.Fatalf("batch replay: code=%d", code)
	}
	for j, i := range idx {
		if !bytes.Equal(sampled[i].Candidates, batch.Results[j].Candidates) {
			t.Fatalf("record %d: stream answered %s, batch answered %s", i, sampled[i].Candidates, batch.Results[j].Candidates)
		}
	}
}
