package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
	"erfilter/internal/online"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

func testConfig() online.Config {
	c3g, _ := text.ParseModel("C3G")
	return online.Config{
		Method: online.KNNJoin, Model: c3g, Measure: sparse.Cosine, K: 3, Clean: true,
	}
}

func newTestServer(t *testing.T) (*httptest.Server, *online.Resolver) {
	t.Helper()
	res := online.NewResolver(testConfig())
	ts := httptest.NewServer(NewServer(WrapResolver(res), nil, Options{RequestTimeout: 10 * time.Second}).Handler())
	t.Cleanup(ts.Close)
	return ts, res
}

// newDurableTestServer serves a WAL-backed store on an injectable
// in-memory file system, the bench for the failure-mode tests.
func newDurableTestServer(t *testing.T, m *faultfs.Mem, writeQueue int) (*httptest.Server, *online.Store) {
	t.Helper()
	store, err := online.OpenStore("walstore", testConfig(), online.StoreOptions{FS: m})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	s := NewServer(WrapResolver(store.Resolver()), WrapStore(store), Options{
		WriteQueue: writeQueue, RequestTimeout: 10 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		store.Close()
	})
	return ts, store
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// doEnvelope performs a request expected to fail and decodes the error
// envelope, failing the test when the body is not the envelope shape.
func doEnvelope(t *testing.T, method, url string, body any) (int, errBody, http.Header) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb errBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("%s %s: response is not the JSON envelope: %v", method, url, err)
	}
	if eb.Error.Code == "" || eb.Error.Message == "" {
		t.Fatalf("%s %s: envelope missing code or message: %+v", method, url, eb)
	}
	return resp.StatusCode, eb, resp.Header
}

func TestServerEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)

	// Insert a batch, then one more entity.
	var ins struct {
		IDs   []int64 `json:"ids"`
		Epoch uint64  `json:"epoch"`
	}
	code := doJSON(t, "POST", ts.URL+"/v1/entities", map[string]any{
		"entities": []map[string]any{
			{"attrs": map[string]string{"name": "canon powershot a540", "price": "199"}},
			{"attrs": map[string]string{"name": "nikon coolpix p100", "price": "299"}},
			{"text": "sony cybershot dsc w55"},
		},
	}, &ins)
	if code != http.StatusOK || len(ins.IDs) != 3 {
		t.Fatalf("batch insert: code=%d ids=%v", code, ins.IDs)
	}
	var one struct {
		IDs []int64 `json:"ids"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/entities", map[string]any{
		"attrs": map[string]string{"name": "apple ipod nano"},
	}, &one); code != http.StatusOK || len(one.IDs) != 1 || one.IDs[0] != 3 {
		t.Fatalf("single insert: code=%d ids=%v", code, one.IDs)
	}

	// Query finds the canon entity first.
	var q struct {
		Epoch      uint64 `json:"epoch"`
		Entities   int    `json:"entities"`
		Candidates []struct {
			ID    int64   `json:"id"`
			Score float64 `json:"score"`
		} `json:"candidates"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/query", map[string]any{
		"attrs": map[string]string{"name": "canon power shot a540"}, "k": 2,
	}, &q); code != http.StatusOK {
		t.Fatalf("query code=%d", code)
	}
	if q.Entities != 4 || len(q.Candidates) == 0 || q.Candidates[0].ID != ins.IDs[0] {
		t.Fatalf("query result: %+v", q)
	}

	// Get echoes stored attributes.
	var got struct {
		ID    int64 `json:"id"`
		Attrs []struct{ Name, Value string }
	}
	if code := doJSON(t, "GET", fmt.Sprintf("%s/v1/entities/%d", ts.URL, ins.IDs[0]), nil, &got); code != http.StatusOK {
		t.Fatalf("get code=%d", code)
	}
	if len(got.Attrs) != 2 || got.Attrs[0].Name != "name" {
		t.Fatalf("get attrs: %+v", got)
	}

	// Delete, then the entity is gone from queries and GETs.
	if code := doJSON(t, "DELETE", fmt.Sprintf("%s/v1/entities/%d", ts.URL, ins.IDs[0]), nil, nil); code != http.StatusOK {
		t.Fatalf("delete code=%d", code)
	}
	if code, eb, _ := doEnvelope(t, "DELETE", fmt.Sprintf("%s/v1/entities/%d", ts.URL, ins.IDs[0]), nil); code != http.StatusNotFound || eb.Error.Code != CodeNotFound {
		t.Fatalf("double delete: code=%d envelope=%+v", code, eb)
	}
	if code, eb, _ := doEnvelope(t, "GET", fmt.Sprintf("%s/v1/entities/%d", ts.URL, ins.IDs[0]), nil); code != http.StatusNotFound || eb.Error.Code != CodeNotFound {
		t.Fatalf("get after delete: code=%d envelope=%+v", code, eb)
	}
	q.Candidates = nil
	doJSON(t, "POST", ts.URL+"/v1/query", map[string]any{"text": "canon powershot a540"}, &q)
	for _, c := range q.Candidates {
		if c.ID == ins.IDs[0] {
			t.Fatalf("deleted entity still served: %+v", q)
		}
	}

	// Bad requests are 4xx in the envelope, not 5xx.
	if code, eb, _ := doEnvelope(t, "POST", ts.URL+"/v1/query", map[string]any{}); code != http.StatusBadRequest || eb.Error.Code != CodeBadRequest {
		t.Fatalf("empty query: code=%d envelope=%+v", code, eb)
	}
	if code, eb, _ := doEnvelope(t, "GET", ts.URL+"/v1/entities/notanumber", nil); code != http.StatusBadRequest || eb.Error.Code != CodeBadRequest {
		t.Fatalf("bad id: code=%d envelope=%+v", code, eb)
	}

	// Healthz and stats.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	var stats struct {
		Resolver  online.Stats `json:"resolver"`
		Endpoints map[string]struct {
			Count  int64 `json:"count"`
			Errors int64 `json:"errors"`
		} `json:"endpoints"`
		UptimeS float64 `json:"uptime_s"`
		Panics  int64   `json:"panics"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats code=%d", code)
	}
	if stats.Resolver.Entities != 3 || stats.Resolver.Inserts != 4 || stats.Resolver.Deletes != 1 {
		t.Fatalf("resolver stats: %+v", stats.Resolver)
	}
	if stats.Endpoints["query"].Count < 2 || stats.Endpoints["insert"].Count != 2 {
		t.Fatalf("endpoint counters: %+v", stats.Endpoints)
	}
	if stats.Endpoints["delete"].Errors != 1 {
		t.Fatalf("delete error counter: %+v", stats.Endpoints)
	}
}

// TestServerSnapshotStream round-trips the resolver through the
// GET /v1/snapshot endpoint and checks the loaded replica answers
// queries identically.
func TestServerSnapshotStream(t *testing.T) {
	ts, res := newTestServer(t)
	for i := 0; i < 20; i++ {
		res.Insert([]entity.Attribute{{Name: "name", Value: fmt.Sprintf("entity number %d canon", i)}})
	}
	res.Delete(4)

	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	replica, err := online.Load(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	q := []entity.Attribute{{Name: "name", Value: "canon entity number 7"}}
	a := res.Query(q, online.QueryOptions{K: 5})
	b := replica.Query(q, online.QueryOptions{K: 5})
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("replica answers differ: %s vs %s", ja, jb)
	}
}

// TestHealthzVsReadyz pins the liveness/readiness split: /v1/healthz
// stays green as long as the process serves, /v1/readyz reflects
// writability.
func TestHealthzVsReadyz(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/v1/healthz", "/v1/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s on healthy server: %v %v", path, err, resp)
		}
		resp.Body.Close()
	}

	m := faultfs.NewMem()
	dts, _ := newDurableTestServer(t, m, 0)
	m.FailAllSyncs(true)
	if code := doJSON(t, "POST", dts.URL+"/v1/entities", map[string]any{"text": "doomed"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("insert on broken disk: code=%d", code)
	}
	code, eb, _ := doEnvelope(t, "GET", dts.URL+"/v1/readyz", nil)
	if code != http.StatusServiceUnavailable || eb.Error.Code != CodeDegraded || !strings.Contains(eb.Error.Message, "degraded") {
		t.Fatalf("readyz on degraded store: %d %+v", code, eb)
	}
	resp, err := http.Get(dts.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz on degraded store must stay ok: %v %v", err, resp)
	}
	resp.Body.Close()
}

// TestDegradedReadOnlyServing: after a WAL disk failure writes fail fast
// with 503 (code "degraded") while queries keep answering from the last
// good epoch.
func TestDegradedReadOnlyServing(t *testing.T) {
	m := faultfs.NewMem()
	ts, store := newDurableTestServer(t, m, 0)
	if code := doJSON(t, "POST", ts.URL+"/v1/entities", map[string]any{
		"text": "canon powershot a540 camera",
	}, nil); code != http.StatusOK {
		t.Fatalf("healthy insert: code=%d", code)
	}
	m.FailAllSyncs(true)
	if code, eb, _ := doEnvelope(t, "POST", ts.URL+"/v1/entities", map[string]any{"text": "lost"}); code != http.StatusServiceUnavailable || eb.Error.Code != CodeDegraded {
		t.Fatalf("degraded insert: code=%d envelope=%+v", code, eb)
	}
	m.FailAllSyncs(false) // disk heals, but the poisoned log stays read-only
	if code, eb, _ := doEnvelope(t, "POST", ts.URL+"/v1/entities", map[string]any{"text": "still rejected"}); code != http.StatusServiceUnavailable || eb.Error.Code != CodeDegraded {
		t.Fatalf("insert after heal: code=%d envelope=%+v", code, eb)
	}
	if code, eb, _ := doEnvelope(t, "DELETE", ts.URL+"/v1/entities/0", nil); code != http.StatusServiceUnavailable || eb.Error.Code != CodeDegraded {
		t.Fatalf("degraded delete: code=%d envelope=%+v", code, eb)
	}
	var q struct {
		Candidates []struct{ ID int64 } `json:"candidates"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/query", map[string]any{"text": "canon a540"}, &q); code != http.StatusOK || len(q.Candidates) == 0 {
		t.Fatalf("degraded query: code=%d candidates=%v", code, q.Candidates)
	}
	var stats struct {
		Store online.StoreStats `json:"store"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK || !stats.Store.Degraded {
		t.Fatalf("stats must report degradation: code=%d %+v", code, stats.Store)
	}
	_ = store
}

// TestOverloadSheds fills the write-admission queue with a write stalled
// in fsync and checks further writes are shed immediately with 503 +
// Retry-After (code "overloaded") while reads keep succeeding.
func TestOverloadSheds(t *testing.T) {
	m := faultfs.NewMem()
	gate := make(chan struct{})
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	defer openGate()

	ts, _ := newDurableTestServer(t, m, 1)
	// Stall fsyncs only from here on, so store open ran unimpeded.
	m.BeforeSync = func(string) { <-gate }

	stalled := make(chan int, 1)
	go func() {
		stalled <- doJSON(t, "POST", ts.URL+"/v1/entities", map[string]any{"text": "slow disk write"}, nil)
	}()
	// Wait until the stalled write holds the only admission token.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats struct {
			WriteQueue struct{ Depth, Capacity int } `json:"write_queue"`
		}
		doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats)
		if stats.WriteQueue.Depth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled write never occupied the admission queue")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The queue is full: writes shed with 503 + Retry-After, fast.
	begin := time.Now()
	code, eb, hdr := doEnvelope(t, "POST", ts.URL+"/v1/entities", map[string]any{"text": "shed me"})
	if code != http.StatusServiceUnavailable || eb.Error.Code != CodeOverloaded {
		t.Fatalf("overloaded insert: code=%d envelope=%+v", code, eb)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if d := time.Since(begin); d > 2*time.Second {
		t.Fatalf("shedding took %v, must be immediate", d)
	}
	// Reads are not admission-gated and still succeed.
	if code := doJSON(t, "POST", ts.URL+"/v1/query", map[string]any{"text": "anything"}, nil); code != http.StatusOK {
		t.Fatalf("query during overload: code=%d", code)
	}
	if resp, err := http.Get(ts.URL + "/v1/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during overload: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	// Release the disk: the stalled write completes and was never lost.
	openGate()
	if code := <-stalled; code != http.StatusOK {
		t.Fatalf("stalled write finished with %d", code)
	}
}

// TestPanicRecovery drives a panicking handler through the middleware:
// the client gets a 500 in the envelope and the counter moves; the
// daemon does not die.
func TestPanicRecovery(t *testing.T) {
	s := NewServer(WrapResolver(online.NewResolver(testConfig())), nil, Options{})
	h := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/anything", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d", rec.Code)
	}
	var eb errBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error.Code != CodeInternal {
		t.Fatalf("panic response is not the envelope: %q (%v)", rec.Body.String(), err)
	}
	if s.panics.Value() != 1 {
		t.Fatalf("panic counter = %d", s.panics.Value())
	}
}

// TestTimeoutCountedAsError is the regression test for the serving-path
// blind spot: a handler killed by the per-request deadline used to be
// recorded as a 200 (the instrumentation sat inside the timeout wrapper
// and never saw the 503 http.TimeoutHandler wrote), and the timeout body
// went out as text/html. The middleware is composed the other way —
// instrument(timeoutJSON(handler)) — so the observation happens on the
// outermost writer and the body is the standard envelope.
func TestTimeoutCountedAsError(t *testing.T) {
	s := NewServer(WrapResolver(online.NewResolver(testConfig())), nil, Options{})
	release := make(chan struct{})
	defer close(release)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
		writeJSON(w, http.StatusOK, map[string]string{"never": "sent"})
	})
	// Compose exactly as Handler() does for JSON endpoints.
	h := s.instrument("slow", timeoutJSON(30*time.Millisecond, slow))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/slow", nil))

	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request answered %d, want 503", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("timeout response Content-Type = %q, want application/json", ct)
	}
	var eb errBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error.Code != CodeDeadlineExceeded {
		t.Fatalf("timeout body is not the JSON error envelope: %q (%v)", rec.Body.String(), err)
	}

	st := s.eps["slow"]
	if got := st.errors.Value(); got != 1 {
		t.Fatalf("timed-out request incremented the error counter by %d, want 1", got)
	}
	if got := st.hist.Count(); got != 1 {
		t.Fatalf("timed-out request recorded %d latency observations, want 1", got)
	}
	// The recorded latency is the deadline the client waited out, not the
	// inner handler's (unfinished) duration.
	if snap := st.hist.Snapshot(); snap.Max < (30 * time.Millisecond).Nanoseconds() {
		t.Fatalf("recorded latency %dns is shorter than the 30ms deadline", snap.Max)
	}

	// A fast request through the same chain keeps its own Content-Type
	// and does not move the error counter.
	rec = httptest.NewRecorder()
	fast := s.instrument("fast", timeoutJSON(time.Second, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})))
	fast.ServeHTTP(rec, httptest.NewRequest("GET", "/fast", nil))
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "text/plain" {
		t.Fatalf("fast path: code=%d ct=%q", rec.Code, rec.Header().Get("Content-Type"))
	}
	if got := s.eps["fast"].errors.Value(); got != 0 {
		t.Fatalf("fast request moved the error counter to %d", got)
	}
}

// TestQueryLimit pins the candidate-list cap and its edge cases: an
// unbounded match set is truncated to the requested limit and flagged;
// limit 0 explicitly selects the default; a negative limit is a 400 in
// the envelope — on both /v1/query and /v1/query/batch.
func TestQueryLimit(t *testing.T) {
	ts, res := newTestServer(t)
	for i := 0; i < 8; i++ {
		res.Insert([]entity.Attribute{{Name: "name", Value: fmt.Sprintf("canon powershot a%d", i)}})
	}

	var q struct {
		Candidates []struct{ ID int64 } `json:"candidates"`
		Truncated  bool                 `json:"truncated"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/query", map[string]any{
		"text": "canon powershot", "k": 8, "limit": 3,
	}, &q); code != http.StatusOK {
		t.Fatalf("limited query code=%d", code)
	}
	if len(q.Candidates) != 3 || !q.Truncated {
		t.Fatalf("limit=3 returned %d candidates truncated=%v", len(q.Candidates), q.Truncated)
	}

	// Under the limit: the full candidate list, no truncation flag. (The
	// kNN search keeps ties at the k-th score, so assert the bound, not
	// an exact count.)
	q.Candidates, q.Truncated = nil, false
	if code := doJSON(t, "POST", ts.URL+"/v1/query", map[string]any{
		"text": "canon powershot", "k": 2, "limit": 100,
	}, &q); code != http.StatusOK {
		t.Fatalf("unlimited query code=%d", code)
	}
	if len(q.Candidates) == 0 || len(q.Candidates) > 8 || q.Truncated {
		t.Fatalf("k=2 limit=100 returned %d candidates truncated=%v", len(q.Candidates), q.Truncated)
	}

	// limit 0 is explicitly the default, not an error and not "none".
	q.Candidates, q.Truncated = nil, false
	if code := doJSON(t, "POST", ts.URL+"/v1/query", map[string]any{
		"text": "canon powershot", "k": 2, "limit": 0,
	}, &q); code != http.StatusOK || len(q.Candidates) == 0 || q.Truncated {
		t.Fatalf("limit=0 (default): code=%d candidates=%d truncated=%v", code, len(q.Candidates), q.Truncated)
	}

	// A negative limit is a client error in the envelope, on both the
	// single and the batch endpoint.
	code, eb, _ := doEnvelope(t, "POST", ts.URL+"/v1/query", map[string]any{"text": "canon", "limit": -1})
	if code != http.StatusBadRequest || eb.Error.Code != CodeBadRequest || !strings.Contains(eb.Error.Message, "limit") {
		t.Fatalf("negative limit: code=%d envelope=%+v", code, eb)
	}
	code, eb, _ = doEnvelope(t, "POST", ts.URL+"/v1/query/batch", map[string]any{
		"queries": []map[string]any{{"text": "canon"}}, "limit": -5,
	})
	if code != http.StatusBadRequest || eb.Error.Code != CodeBadRequest || !strings.Contains(eb.Error.Message, "limit") {
		t.Fatalf("negative batch limit: code=%d envelope=%+v", code, eb)
	}
}

// TestQueryTrace checks "trace":true returns the per-phase breakdown of
// that one request without disturbing the normal response shape.
func TestQueryTrace(t *testing.T) {
	ts, res := newTestServer(t)
	res.Insert([]entity.Attribute{{Name: "name", Value: "canon powershot a540"}})

	var q struct {
		Candidates []struct{ ID int64 } `json:"candidates"`
		Trace      *struct {
			Epoch      uint64 `json:"epoch"`
			EncodeUS   int64  `json:"encode_us"`
			SearchUS   int64  `json:"search_us"`
			Candidates int    `json:"candidates"`
		} `json:"trace"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/query", map[string]any{
		"text": "canon powershot", "trace": true,
	}, &q); code != http.StatusOK {
		t.Fatalf("traced query code=%d", code)
	}
	if q.Trace == nil {
		t.Fatal("trace requested but absent from the response")
	}
	if q.Trace.Candidates < len(q.Candidates) || q.Trace.EncodeUS < 0 || q.Trace.SearchUS < 0 {
		t.Fatalf("implausible trace: %+v", *q.Trace)
	}

	q.Trace = nil
	if code := doJSON(t, "POST", ts.URL+"/v1/query", map[string]any{
		"text": "canon powershot",
	}, &q); code != http.StatusOK || q.Trace != nil {
		t.Fatalf("untraced query: code=%d trace=%+v", code, q.Trace)
	}
}

// TestStatusWriterFlusher pins that the instrumentation wrapper does not
// hide http.Flusher from streaming handlers (/v1/snapshot flushes while
// writing the collection).
func TestStatusWriterFlusher(t *testing.T) {
	var _ http.Flusher = (*statusWriter)(nil) // interface is satisfied

	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec, status: http.StatusOK}
	f, ok := any(sw).(http.Flusher)
	if !ok {
		t.Fatal("statusWriter does not satisfy http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}

	// A non-flushing underlying writer must not panic.
	sw = &statusWriter{ResponseWriter: nopWriter{httptest.NewRecorder()}, status: http.StatusOK}
	sw.Flush()
}

// nopWriter hides every optional interface of the wrapped writer.
type nopWriter struct{ w http.ResponseWriter }

func (n nopWriter) Header() http.Header         { return n.w.Header() }
func (n nopWriter) Write(b []byte) (int, error) { return n.w.Write(b) }
func (n nopWriter) WriteHeader(code int)        { n.w.WriteHeader(code) }

// TestPprofGating: the profiling endpoints exist only behind Pprof.
func TestPprofGating(t *testing.T) {
	s := NewServer(WrapResolver(online.NewResolver(testConfig())), nil, Options{})
	off := httptest.NewServer(s.Handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without Pprof: %d", resp.StatusCode)
	}

	s2 := NewServer(WrapResolver(online.NewResolver(testConfig())), nil, Options{Pprof: true})
	on := httptest.NewServer(s2.Handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof not served with Pprof: %d", resp.StatusCode)
	}
}
