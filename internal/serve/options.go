package serve

// The shared per-request option set. Every candidate-producing endpoint
// — /v1/query, /v1/query/batch, /v1/resolve/stream and /v1/match —
// accepts the same knobs with the same validation and the same 400
// envelopes: k, eps, ef, approx, limit, where, min_score, trace,
// min_epoch. JSON endpoints take them as body fields; the NDJSON
// stream, whose body is the feed, takes the identical set as URL query
// parameters. One decode+validate path (resolveOptions) serves all
// four, so an option can never drift between endpoints.

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"erfilter/internal/online"
)

// requestOptions is the wire form of the shared option set.
type requestOptions struct {
	// K asks for the k nearest candidates (KNN-join semantics).
	K int `json:"k"`
	// Eps asks for every candidate at similarity >= eps (ε-join).
	Eps float64 `json:"eps"`
	// Ef widens the beam of an approximate (HNSW) index.
	Ef int `json:"ef"`
	// Approx false forces the exact oracle on an approximate index.
	Approx *bool `json:"approx"`
	// Limit caps the serialized candidate list; 0 picks the default.
	Limit int `json:"limit"`
	// Where is the predicate DSL (filters, score floor, top, explain).
	Where string `json:"where"`
	// MinScore is a direct score floor; combined with a where-derived
	// floor the stricter one wins.
	MinScore *float64 `json:"min_score"`
	// Trace asks for the engine timing section.
	Trace bool `json:"trace"`
	// MinEpoch bounds replica staleness (read-your-writes token).
	MinEpoch string `json:"min_epoch"`
}

// optionsFromURL decodes the shared option set from URL query
// parameters — the stream's carrier — with the same field names the
// JSON bodies use.
func optionsFromURL(qp url.Values) (requestOptions, error) {
	var ro requestOptions
	var err error
	if ro.K, err = intParam(qp, "k"); err != nil {
		return ro, err
	}
	if ro.Eps, err = floatParam(qp, "eps"); err != nil {
		return ro, err
	}
	if ro.Ef, err = intParam(qp, "ef"); err != nil {
		return ro, err
	}
	if v := qp.Get("approx"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return ro, fmt.Errorf("bad approx: %q", v)
		}
		ro.Approx = &b
	}
	if ro.Limit, err = intParam(qp, "limit"); err != nil {
		return ro, err
	}
	ro.Where = qp.Get("where")
	if v := qp.Get("min_score"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return ro, fmt.Errorf("bad min_score: %q", v)
		}
		ro.MinScore = &f
	}
	if v := qp.Get("trace"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return ro, fmt.Errorf("bad trace: %q", v)
		}
		ro.Trace = b
	}
	ro.MinEpoch = qp.Get("min_epoch")
	return ro, nil
}

// resolvedOptions is the validated, engine-ready form.
type resolvedOptions struct {
	opt     online.QueryOptions
	limit   int
	plan    string
	explain bool
}

// resolveOptions validates the shared option set and folds it into
// engine query options. On failure it writes the enveloped 400 (or the
// epoch-bound 412) itself and returns ok=false; every endpoint that
// accepts these options fails identically.
func (s *Server) resolveOptions(w http.ResponseWriter, ro requestOptions) (resolvedOptions, bool) {
	if !s.checkEpoch(w, ro.MinEpoch) {
		return resolvedOptions{}, false
	}
	opt, err := resolveANN(ro.Ef, ro.Approx)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return resolvedOptions{}, false
	}
	limit, err := resolveLimit(ro.Limit)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return resolvedOptions{}, false
	}
	limit, plan, explain, err := applyWhere(ro.Where, &opt, limit)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return resolvedOptions{}, false
	}
	if ro.MinScore != nil {
		if *ro.MinScore < 0 {
			writeErr(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("min_score must be >= 0, got %v", *ro.MinScore))
			return resolvedOptions{}, false
		}
		// The stricter of the direct floor and a where-derived one.
		if opt.MinScore == nil || *ro.MinScore > *opt.MinScore {
			ms := *ro.MinScore
			opt.MinScore = &ms
		}
	}
	opt.K, opt.Threshold = ro.K, ro.Eps
	return resolvedOptions{opt: opt, limit: limit, plan: plan, explain: explain}, true
}
