package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/knn"
	"erfilter/internal/online"
)

// annConfigs returns a flat and an HNSW dense config that differ only
// in the index, so the flat server is the exact oracle for the other.
func annConfigs() (flat, hnsw online.Config) {
	flat = online.Config{Method: online.FlatKNN, K: 3, Metric: knn.L2Squared, Dim: 32}
	hnsw = flat
	hnsw.Dense = online.DenseHNSW
	hnsw.HNSW = knn.HNSWParams{Seed: 7}
	return flat, hnsw
}

// TestQueryANNKnobs drives the "ef" and "approx" request fields through
// /v1/query and /v1/query/batch against an HNSW-backed resolver:
// "approx": false must answer byte-identically to a flat oracle server,
// the approximate default must hold the recall gate on this small
// collection, a widened "ef" must stay valid, and a negative "ef" is a
// bad request.
func TestQueryANNKnobs(t *testing.T) {
	flatCfg, hnswCfg := annConfigs()
	oracle := online.NewResolver(flatCfg)
	res := online.NewResolver(hnswCfg)
	for i := 0; i < 120; i++ {
		attrs := []entity.Attribute{{Name: "text", Value: fmt.Sprintf("item %d of corpus %d", i, i%7)}}
		oracle.Insert(attrs)
		res.Insert(attrs)
	}
	tsO := httptest.NewServer(NewServer(WrapResolver(oracle), nil, Options{RequestTimeout: 10 * time.Second}).Handler())
	defer tsO.Close()
	ts := httptest.NewServer(NewServer(WrapResolver(res), nil, Options{RequestTimeout: 10 * time.Second}).Handler())
	defer ts.Close()

	type queryResp struct {
		Candidates []candJSON `json:"candidates"`
	}
	exact := false
	for _, probe := range []string{"item 3 of corpus 3", "item 90 of corpus 6", "unseen probe"} {
		var want, got, approx queryResp
		if code := doJSON(t, "POST", tsO.URL+"/v1/query", map[string]any{"text": probe, "k": 5}, &want); code != 200 {
			t.Fatalf("oracle query: status %d", code)
		}
		if code := doJSON(t, "POST", ts.URL+"/v1/query",
			map[string]any{"text": probe, "k": 5, "approx": &exact}, &got); code != 200 {
			t.Fatalf("exact query: status %d", code)
		}
		if !reflect.DeepEqual(got.Candidates, want.Candidates) {
			t.Fatalf("probe %q: approx:false diverged from flat oracle:\n got %v\nwant %v", probe, got.Candidates, want.Candidates)
		}
		// The approximate path with a widened beam: every candidate must
		// score at or above the oracle's worst (tie-tolerant recall 1.0
		// at 120 entities is what the knn gate guarantees).
		if code := doJSON(t, "POST", ts.URL+"/v1/query",
			map[string]any{"text": probe, "k": 5, "ef": 128}, &approx); code != 200 {
			t.Fatalf("approx query: status %d", code)
		}
		if len(approx.Candidates) != len(want.Candidates) {
			t.Fatalf("probe %q: approx returned %d candidates, oracle %d", probe, len(approx.Candidates), len(want.Candidates))
		}
		cutoff := want.Candidates[len(want.Candidates)-1].Score
		for _, c := range approx.Candidates {
			if c.Score < cutoff {
				t.Fatalf("probe %q: approx candidate %v below oracle cutoff %v", probe, c, cutoff)
			}
		}
	}

	// Batch form: approx:false must match the oracle's batch answers.
	batch := map[string]any{
		"queries": []map[string]string{{"text": "item 11 of corpus 4"}, {"text": "item 44 of corpus 2"}},
		"k":       4, "approx": &exact,
	}
	type batchResp struct {
		Results []struct {
			Candidates []candJSON `json:"candidates"`
		} `json:"results"`
	}
	var wantB, gotB batchResp
	oracleBatch := map[string]any{"queries": batch["queries"], "k": 4}
	if code := doJSON(t, "POST", tsO.URL+"/v1/query/batch", oracleBatch, &wantB); code != 200 {
		t.Fatalf("oracle batch: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/query/batch", batch, &gotB); code != 200 {
		t.Fatalf("exact batch: status %d", code)
	}
	if !reflect.DeepEqual(gotB, wantB) {
		t.Fatalf("batch approx:false diverged:\n got %+v\nwant %+v", gotB, wantB)
	}

	// Validation: a negative beam is a client error on both endpoints.
	var eb errBody
	if code := doJSON(t, "POST", ts.URL+"/v1/query", map[string]any{"text": "x", "ef": -1}, &eb); code != http.StatusBadRequest {
		t.Fatalf("ef=-1 on /v1/query: status %d, want 400", code)
	}
	if eb.Error.Code != CodeBadRequest {
		t.Fatalf("ef=-1 error code %q", eb.Error.Code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/query/batch",
		map[string]any{"queries": []map[string]string{{"text": "x"}}, "ef": -1}, &eb); code != http.StatusBadRequest {
		t.Fatalf("ef=-1 on /v1/query/batch: status %d, want 400", code)
	}

	// The knobs are harmless on exact indexes: the flat oracle accepts
	// them and ignores both.
	var flatGot queryResp
	if code := doJSON(t, "POST", tsO.URL+"/v1/query",
		map[string]any{"text": "item 3 of corpus 3", "k": 5, "ef": 64, "approx": &exact}, &flatGot); code != 200 {
		t.Fatalf("flat server with ANN knobs: status %d", code)
	}
}
