package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/match"
	"erfilter/internal/online"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

// epsTestConfig is the ε-join configuration the dirty-ER tests use —
// the pair-local filter whose decisions survive incremental closure.
func epsTestConfig() online.Config {
	c3g, _ := text.ParseModel("C3G")
	return online.Config{
		Method: online.EpsJoin, Model: c3g, Measure: sparse.Jaccard, Threshold: 0.3, Clean: true,
	}
}

func newMatchServer(t *testing.T, res Resolver, mo *MatchOptions) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer(res, nil, Options{
		RequestTimeout: 10 * time.Second, Match: mo,
	}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

type matchResponse struct {
	Epoch    uint64 `json:"epoch"`
	Entities int    `json:"entities"`
	Matches  []struct {
		Query int     `json:"query"`
		ID    int64   `json:"id"`
		Score float64 `json:"score"`
	} `json:"matches"`
	Pairs       int  `json:"pairs"`
	Comparisons int  `json:"comparisons"`
	Exhausted   bool `json:"exhausted"`
}

// TestMatchEndpoint drives POST /v1/match end to end: decided matches
// come back one-to-one in decreasing score, the budget caps scorer
// comparisons, the per-request assign override is honored, and a
// sharded server answers byte-identically to a single one.
func TestMatchEndpoint(t *testing.T) {
	mo := &MatchOptions{Config: match.Config{Scorer: match.ScoreJaroWinkler, Threshold: 0.85}}
	single := online.NewResolver(testConfig())
	sharded := online.NewSharded(testConfig(), 3)
	tsS := newMatchServer(t, WrapResolver(single), mo)
	tsH := newMatchServer(t, WrapSharded(sharded), mo)

	var ents []map[string]any
	for i := 0; i < 40; i++ {
		ents = append(ents, map[string]any{"text": fmt.Sprintf("canon powershot a%d zoom kit", i%13)})
	}
	for _, ts := range []*httptest.Server{tsS, tsH} {
		var out struct {
			IDs []int64 `json:"ids"`
		}
		if code := doJSON(t, "POST", ts.URL+"/v1/entities", map[string]any{"entities": ents}, &out); code != http.StatusOK {
			t.Fatalf("insert: code=%d", code)
		}
	}

	body := map[string]any{
		"queries": []map[string]any{
			{"text": "canon powershot a3 zoom kit"},
			{"text": "canon powershot a7 zoom kit"},
			{"text": "totally unrelated quartz watch"},
		},
		"k": 5,
	}
	var ms, mh matchResponse
	if code := doJSON(t, "POST", tsS.URL+"/v1/match", body, &ms); code != http.StatusOK {
		t.Fatalf("single match: code=%d", code)
	}
	if code := doJSON(t, "POST", tsH.URL+"/v1/match", body, &mh); code != http.StatusOK {
		t.Fatalf("sharded match: code=%d", code)
	}
	if len(ms.Matches) == 0 {
		t.Fatal("no decided matches for near-duplicate queries")
	}
	for i := 1; i < len(ms.Matches); i++ {
		if ms.Matches[i].Score > ms.Matches[i-1].Score {
			t.Fatalf("matches not in decreasing score order: %+v", ms.Matches)
		}
	}
	seenQ := map[int]bool{}
	seenID := map[int64]bool{}
	for _, m := range ms.Matches {
		if seenQ[m.Query] || seenID[m.ID] {
			t.Fatalf("one-to-one violated: %+v", ms.Matches)
		}
		seenQ[m.Query], seenID[m.ID] = true, true
		if m.Score < 0.85 {
			t.Fatalf("decision below threshold: %+v", m)
		}
	}
	// The sharded decision path is byte-identical to the single one
	// (epoch excluded: a sharded epoch is the sum of shard epochs).
	js, _ := json.Marshal(struct {
		M any `json:"m"`
		P int `json:"p"`
		C int `json:"c"`
	}{ms.Matches, ms.Pairs, ms.Comparisons})
	jh, _ := json.Marshal(struct {
		M any `json:"m"`
		P int `json:"p"`
		C int `json:"c"`
	}{mh.Matches, mh.Pairs, mh.Comparisons})
	if !bytes.Equal(js, jh) {
		t.Fatalf("sharded match diverged:\n single: %s\nsharded: %s", js, jh)
	}

	// Budget: comparisons stop at the cap, exhaustion is reported.
	budget := body
	budget["budget"] = 2
	var mb matchResponse
	if code := doJSON(t, "POST", tsS.URL+"/v1/match", budget, &mb); code != http.StatusOK {
		t.Fatalf("budget match: code=%d", code)
	}
	if mb.Comparisons > 2 || !mb.Exhausted {
		t.Fatalf("budget ignored: comparisons=%d exhausted=%v", mb.Comparisons, mb.Exhausted)
	}
	delete(budget, "budget")

	// Top: the progressive emitter keeps only the best decision.
	top := body
	top["top"] = 1
	var mt matchResponse
	if code := doJSON(t, "POST", tsS.URL+"/v1/match", top, &mt); code != http.StatusOK {
		t.Fatalf("top match: code=%d", code)
	}
	if len(mt.Matches) != 1 || mt.Matches[0] != ms.Matches[0] {
		t.Fatalf("top=1 returned %+v, want the best decision %+v", mt.Matches, ms.Matches[:1])
	}
	delete(top, "top")

	// Per-request assignment override parses; garbage is a 400.
	body["assign"] = "bipartite"
	if code := doJSON(t, "POST", tsS.URL+"/v1/match", body, nil); code != http.StatusOK {
		t.Fatalf("bipartite match: code=%d", code)
	}
	body["assign"] = "munkres"
	if code, eb, _ := doEnvelope(t, "POST", tsS.URL+"/v1/match", body); code != http.StatusBadRequest || eb.Error.Code != CodeBadRequest {
		t.Fatalf("bad assign: code=%d envelope=%+v", code, eb)
	}
	// The shared option set validates identically here.
	if code, _, _ := doEnvelope(t, "POST", tsS.URL+"/v1/match",
		map[string]any{"queries": []map[string]any{{"text": "x"}}, "limit": -1}); code != http.StatusBadRequest {
		t.Fatalf("negative limit on /v1/match: code=%d", code)
	}
}

// TestDirtyInsertReturnsClusters drives dirty-ER mode over HTTP: every
// insert names its own duplicate cluster and the decided matches that
// put it there, /v1/clusters/{id} reads the cluster back, deletes
// shrink it, and /v1/stats carries the match and cluster sections.
func TestDirtyInsertReturnsClusters(t *testing.T) {
	res := online.NewResolver(epsTestConfig())
	mo := &MatchOptions{Config: match.Config{Scorer: match.ScoreJaroWinkler, Threshold: 0.9}, Dirty: true}
	ts := newMatchServer(t, WrapResolver(res), mo)

	type insertOut struct {
		IDs     []int64 `json:"ids"`
		Results []struct {
			ID      int64 `json:"id"`
			Cluster int64 `json:"cluster"`
			Matches []struct {
				ID    int64   `json:"id"`
				Score float64 `json:"score"`
			} `json:"matches"`
		} `json:"results"`
	}
	insert := func(text string) insertOut {
		t.Helper()
		var out insertOut
		if code := doJSON(t, "POST", ts.URL+"/v1/entities", map[string]any{"text": text}, &out); code != http.StatusOK {
			t.Fatalf("insert %q: code=%d", text, code)
		}
		if len(out.Results) != 1 || len(out.IDs) != 1 || out.Results[0].ID != out.IDs[0] {
			t.Fatalf("insert %q: malformed dirty response %+v", text, out)
		}
		return out
	}

	a := insert("canon powershot a540 digital camera")
	novel := insert("seiko quartz wrist watch")
	if novel.Results[0].Cluster != novel.IDs[0] || len(novel.Results[0].Matches) != 0 {
		t.Fatalf("novel entity not a singleton cluster: %+v", novel.Results[0])
	}
	dup := insert("canon powershot a540 digital camera")
	if dup.Results[0].Cluster != a.IDs[0] {
		t.Fatalf("duplicate landed in cluster %d, want %d", dup.Results[0].Cluster, a.IDs[0])
	}
	if len(dup.Results[0].Matches) == 0 || dup.Results[0].Matches[0].ID != a.IDs[0] {
		t.Fatalf("duplicate insert did not report its match: %+v", dup.Results[0])
	}

	// Cluster read: both members, canonical min-id cluster.
	var cl struct {
		Cluster int64   `json:"cluster"`
		Members []int64 `json:"members"`
		Size    int     `json:"size"`
	}
	if code := doJSON(t, "GET", fmt.Sprintf("%s/v1/clusters/%d", ts.URL, dup.IDs[0]), nil, &cl); code != http.StatusOK {
		t.Fatalf("cluster read: code=%d", code)
	}
	if cl.Cluster != a.IDs[0] || cl.Size != 2 {
		t.Fatalf("cluster read: %+v, want cluster %d size 2", cl, a.IDs[0])
	}
	if code, eb, _ := doEnvelope(t, "GET", ts.URL+"/v1/clusters/424242", nil); code != http.StatusNotFound || eb.Error.Code != CodeNotFound {
		t.Fatalf("missing cluster: code=%d envelope=%+v", code, eb)
	}

	// Delete shrinks the cluster.
	if code := doJSON(t, "DELETE", fmt.Sprintf("%s/v1/entities/%d", ts.URL, a.IDs[0]), nil, nil); code != http.StatusOK {
		t.Fatalf("delete: code=%d", code)
	}
	if code := doJSON(t, "GET", fmt.Sprintf("%s/v1/clusters/%d", ts.URL, dup.IDs[0]), nil, &cl); code != http.StatusOK || cl.Size != 1 {
		t.Fatalf("cluster after delete: code=%d %+v", code, cl)
	}

	// Stats surface the decider and cluster counters.
	var stats struct {
		Match    *match.DeciderStats `json:"match"`
		Clusters *match.ClusterStats `json:"clusters"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: code=%d", code)
	}
	if stats.Match == nil || stats.Match.Comparisons == 0 {
		t.Fatalf("stats missing match section: %+v", stats.Match)
	}
	if stats.Clusters == nil || stats.Clusters.Entities == 0 {
		t.Fatalf("stats missing clusters section: %+v", stats.Clusters)
	}
}

// TestDirtyClustersSurviveRestart pins the recovery contract at the
// serving layer: a new server over the same resolver state rebuilds the
// same clusters the incremental path maintained.
func TestDirtyClustersSurviveRestart(t *testing.T) {
	res := online.NewResolver(epsTestConfig())
	mo := &MatchOptions{Config: match.Config{Scorer: match.ScoreJaroWinkler, Threshold: 0.9}, Dirty: true}
	ts := newMatchServer(t, WrapResolver(res), mo)

	texts := []string{
		"canon powershot a540 digital camera",
		"canon powershot a540 digital camera",
		"nikon coolpix p50 compact",
		"nikon coolpix p50 compact",
		"seiko quartz wrist watch",
	}
	for _, x := range texts {
		if code := doJSON(t, "POST", ts.URL+"/v1/entities", map[string]any{"text": x}, nil); code != http.StatusOK {
			t.Fatalf("insert %q: code=%d", x, code)
		}
	}
	readClusters := func(ts *httptest.Server) map[int64]int64 {
		t.Helper()
		out := map[int64]int64{}
		for id := int64(0); id < int64(len(texts)); id++ {
			var cl struct {
				Cluster int64 `json:"cluster"`
			}
			if code := doJSON(t, "GET", fmt.Sprintf("%s/v1/clusters/%d", ts.URL, id), nil, &cl); code != http.StatusOK {
				t.Fatalf("cluster %d: code=%d", id, code)
			}
			out[id] = cl.Cluster
		}
		return out
	}
	before := readClusters(ts)

	// "Restart": a fresh server over the same resolver must rebuild the
	// identical clusters from the resolver's state alone.
	ts2 := newMatchServer(t, WrapResolver(res), mo)
	after := readClusters(ts2)
	for id, c := range before {
		if after[id] != c {
			t.Fatalf("cluster of %d changed across restart: %d -> %d", id, c, after[id])
		}
	}
	if before[0] != before[1] || before[2] != before[3] || before[0] == before[4] || before[2] == before[4] {
		t.Fatalf("unexpected cluster structure: %v", before)
	}
}

// TestStreamMatchMode drives the NDJSON stream in match mode: one
// decided line per record in input order, the summary reporting totals,
// and the mode gate refusing unknown modes and unconfigured servers.
func TestStreamMatchMode(t *testing.T) {
	mo := &MatchOptions{Config: match.Config{Scorer: match.ScoreJaroWinkler, Threshold: 0.85}}
	res := online.NewResolver(testConfig())
	ts := newMatchServer(t, WrapResolver(res), mo)
	for i := 0; i < 20; i++ {
		res.Insert([]entity.Attribute{{Name: "name", Value: fmt.Sprintf("canon powershot a%d zoom kit", i)}})
	}

	feed := strings.Join([]string{
		`{"text":"canon powershot a3 zoom kit"}`,
		`{"text":"unrelated quartz watch"}`,
		`{"text":"canon powershot a7 zoom kit"}`,
	}, "\n")
	resp, err := http.Post(ts.URL+"/v1/resolve/stream?mode=match&k=5", "application/x-ndjson", strings.NewReader(feed))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: code=%d", resp.StatusCode)
	}
	var lines []map[string]json.RawMessage
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var m map[string]json.RawMessage
		if err := dec.Decode(&m); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 4 {
		t.Fatalf("stream emitted %d lines, want 3 records + summary", len(lines))
	}
	matched := 0
	for i, ln := range lines[:3] {
		var rec struct {
			I       int `json:"i"`
			Matches []struct {
				ID    int64   `json:"id"`
				Score float64 `json:"score"`
			} `json:"matches"`
		}
		raw, _ := json.Marshal(ln)
		if err := json.Unmarshal(raw, &rec); err != nil || rec.I != i {
			t.Fatalf("record %d: %s (err=%v)", i, raw, err)
		}
		matched += len(rec.Matches)
	}
	var sum struct {
		Done    bool `json:"done"`
		Records int  `json:"records"`
		Matches int  `json:"matches"`
	}
	raw, _ := json.Marshal(lines[3])
	if err := json.Unmarshal(raw, &sum); err != nil || !sum.Done || sum.Records != 3 {
		t.Fatalf("summary: %s (err=%v)", raw, err)
	}
	if sum.Matches != matched || matched == 0 {
		t.Fatalf("summary matches=%d, lines carried %d", sum.Matches, matched)
	}

	// Unknown mode: enveloped 400 before any streaming starts.
	if code, eb, _ := doEnvelope(t, "POST", ts.URL+"/v1/resolve/stream?mode=frob", nil); code != http.StatusBadRequest || eb.Error.Code != CodeBadRequest {
		t.Fatalf("bad mode: code=%d envelope=%+v", code, eb)
	}
	// mode=match without the stage: enveloped 501.
	plain, _ := newTestServer(t)
	if code, eb, _ := doEnvelope(t, "POST", plain.URL+"/v1/resolve/stream?mode=match", nil); code != http.StatusNotImplemented || eb.Error.Code != CodeMatchDisabled {
		t.Fatalf("match mode unconfigured: code=%d envelope=%+v", code, eb)
	}
}
