package serve

// The match-stage endpoints. POST /v1/match runs the full
// filter-then-verify pipeline in one request: the batch is resolved
// against the snapshot, the candidate pairs are scored with the
// configured post-filter scorer, and the decisions come back one-to-one
// under the requested assignment discipline. GET /v1/clusters/{id}
// reads the dirty-ER duplicate cluster of a resident entity. Both
// routes are always mounted; on a server built without Options.Match
// they answer 501 match_disabled so clients can distinguish "not
// configured here" from a typo'd path.

import (
	"errors"
	"fmt"
	"net/http"

	"erfilter/internal/match"
)

// decJSON is the wire form of one decided match inside a batch.
type decJSON struct {
	Query int     `json:"query"`
	ID    int64   `json:"id"`
	Score float64 `json:"score"`
}

func decList(ds []match.Decision) []decJSON {
	out := make([]decJSON, len(ds))
	for i, d := range ds {
		out[i] = decJSON{Query: d.Query, ID: d.ID, Score: d.Score}
	}
	return out
}

// insertResultJSON is one dirty-mode insert outcome: the new id, the
// duplicate cluster it landed in, and the decided matches that put it
// there (empty for a novel entity, whose cluster is itself).
type insertResultJSON struct {
	ID      int64     `json:"id"`
	Cluster int64     `json:"cluster"`
	Matches []decJSON `json:"matches"`
}

// checkMatch gates a match-stage endpoint on the stage being
// configured.
func (s *Server) checkMatch(w http.ResponseWriter) bool {
	if s.matcher == nil {
		writeErr(w, http.StatusNotImplemented, CodeMatchDisabled,
			errors.New("match stage not configured (start with -match)"))
		return false
	}
	return true
}

// matchParams are the match-only knobs riding alongside the shared
// option set: the comparison budget, the progressive top-N cut, and a
// per-request assignment override.
type matchParams struct {
	Budget int    `json:"budget"`
	Top    int    `json:"top"`
	Assign string `json:"assign"`
}

// resolve validates the match knobs. assign < 0 means "use the
// server's configured discipline".
func (p matchParams) resolve(w http.ResponseWriter) (match.Request, match.Assign, bool) {
	if p.Budget < 0 {
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("budget must be >= 0, got %d", p.Budget))
		return match.Request{}, 0, false
	}
	if p.Top < 0 {
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("top must be >= 0, got %d", p.Top))
		return match.Request{}, 0, false
	}
	assign := match.Assign(-1)
	if p.Assign != "" {
		a, err := match.ParseAssign(p.Assign)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
			return match.Request{}, 0, false
		}
		assign = a
	}
	return match.Request{Budget: p.Budget, Top: p.Top}, assign, true
}

// handleMatch decides a batch of queries in one shot. The request
// accepts the shared option set plus the match knobs:
//
//	{"queries":[...], "k":..., "eps":..., "budget":N, "top":N,
//	 "assign":"greedy"|"bipartite"}
//
// Decisions come back in decreasing scorer similarity — the
// progressive "best pairs first" order — and the response reports how
// many comparisons the budget actually bought.
func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if !s.checkMatch(w) {
		return
	}
	var req struct {
		Queries []entityPayload `json:"queries"`
		requestOptions
		matchParams
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	ro, ok := s.resolveOptions(w, req.requestOptions)
	if !ok {
		return
	}
	mreq, assign, ok := req.matchParams.resolve(w)
	if !ok {
		return
	}
	batch, ok := s.queryBatch(w, req.Queries)
	if !ok {
		return
	}
	mreq.Opt = ro.opt
	s.tagEpoch(w)
	res := s.matcher.DecideBatch(s.res.Snapshot(), batch, mreq, assign)
	out := struct {
		Epoch       uint64    `json:"epoch"`
		Entities    int       `json:"entities"`
		Matches     []decJSON `json:"matches"`
		Pairs       int       `json:"pairs"`
		Comparisons int       `json:"comparisons"`
		Exhausted   bool      `json:"exhausted,omitempty"`
		Plan        string    `json:"plan,omitempty"`
	}{
		Epoch: res.Epoch, Entities: res.Entities, Matches: decList(res.Decisions),
		Pairs: res.Pairs, Comparisons: res.Comparisons, Exhausted: res.Exhausted,
		Plan: ro.plan,
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCluster reads the duplicate cluster of one resident entity:
// its canonical cluster id (the smallest member) and the full member
// list. Only meaningful in dirty-ER mode.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.dirty == nil {
		writeErr(w, http.StatusNotImplemented, CodeMatchDisabled,
			errors.New("cluster reads need dirty-ER mode (start with -match -dirty)"))
		return
	}
	id, err := pathID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	cluster, members, ok := s.dirty.ClusterOf(id)
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("entity %d not resident", id))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ID      int64   `json:"id"`
		Cluster int64   `json:"cluster"`
		Members []int64 `json:"members"`
		Size    int     `json:"size"`
	}{ID: id, Cluster: cluster, Members: members, Size: len(members)})
}
