package serve

// Proxy is the replica-set front door: it probes every replica's
// /v1/readyz, learns who leads from the X-ER-Role header, routes writes
// (and replication traffic) to the leader, and load-balances reads
// round-robin across healthy replicas — ejecting a replica after
// consecutive forwarding failures until a probe re-admits it. It is a
// plain HTTP forwarder, not a coordinator: failover is still explicit
// (POST /v1/failover to the chosen follower), but the proxy notices the
// new leader on its next probe round without reconfiguration.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"erfilter/internal/metrics"
	"erfilter/internal/repl"
)

// ProxyOptions tune the proxy; the zero value is production-ready.
type ProxyOptions struct {
	// ProbeEvery is the health-probe interval (default 1s).
	ProbeEvery time.Duration
	// EjectAfter ejects a replica from the read rotation after this many
	// consecutive forwarding failures (default 3); probes re-admit it.
	EjectAfter int
	// Client issues probes and forwards (default: a dedicated client).
	Client *http.Client
	// MaxBody caps a buffered (retryable) request body, answering 413
	// past it (default DefaultMaxBody, matching the backends). The
	// resolve stream is exempt: it pipes through unbuffered.
	MaxBody int64
}

func (o ProxyOptions) withDefaults() ProxyOptions {
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = time.Second
	}
	if o.EjectAfter <= 0 {
		o.EjectAfter = 3
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.MaxBody <= 0 {
		o.MaxBody = DefaultMaxBody
	}
	return o
}

// replica is one probed backend.
type replica struct {
	url     string
	healthy atomic.Bool
	role    atomic.Value // string
	fails   atomic.Int64
	lastErr atomic.Value // string
}

func (b *replica) note(err error) {
	if err != nil {
		b.lastErr.Store(err.Error())
	} else {
		b.lastErr.Store("")
	}
}

// Proxy load-balances a replica set; build with NewProxy, mount
// Handler(), Close to stop probing.
type Proxy struct {
	opt      ProxyOptions
	replicas []*replica
	rr       atomic.Uint64

	reg       *metrics.Registry
	reads     *metrics.Counter
	writes    *metrics.Counter
	forwdErrs *metrics.Counter

	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewProxy builds a proxy over the replica base URLs and starts its
// probe loop. Every URL is probed immediately so the first request
// already has a health view.
func NewProxy(urls []string, opt ProxyOptions) (*Proxy, error) {
	if len(urls) == 0 {
		return nil, errors.New("serve: proxy needs at least one replica URL")
	}
	p := &Proxy{opt: opt.withDefaults(), reg: metrics.NewRegistry(), done: make(chan struct{})}
	for _, raw := range urls {
		u, err := url.Parse(strings.TrimRight(raw, "/"))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("serve: bad replica URL %q", raw)
		}
		b := &replica{url: u.String()}
		b.role.Store("")
		b.lastErr.Store("")
		p.replicas = append(p.replicas, b)
	}
	p.reads = p.reg.Counter("erproxy_forwarded_reads_total", "Read requests forwarded to replicas.", nil)
	p.writes = p.reg.Counter("erproxy_forwarded_writes_total", "Write requests forwarded to the leader.", nil)
	p.forwdErrs = p.reg.Counter("erproxy_forward_errors_total", "Forwarding attempts that failed at transport level.", nil)
	for _, b := range p.replicas {
		bb := b
		p.reg.GaugeFunc("erproxy_replica_healthy", "1 while the replica passes probes and forwards.",
			metrics.Labels{"replica": bb.url}, func() float64 {
				if bb.healthy.Load() {
					return 1
				}
				return 0
			})
	}
	p.probeAll()
	p.wg.Add(1)
	go p.probeLoop()
	return p, nil
}

// Close stops the probe loop.
func (p *Proxy) Close() {
	p.once.Do(func() { close(p.done) })
	p.wg.Wait()
}

func (p *Proxy) probeLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.opt.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

// probeAll refreshes every replica's health and role. A replica is
// healthy only on a 200 readyz — a deposed leader or a stale follower
// answers 503 and leaves the rotation, while its X-ER-Role (sent even
// on 503s) keeps the topology view current.
func (p *Proxy) probeAll() {
	var wg sync.WaitGroup
	for _, b := range p.replicas {
		wg.Add(1)
		go func(b *replica) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodGet, b.url+"/v1/readyz", nil)
			if err != nil {
				b.healthy.Store(false)
				b.note(err)
				return
			}
			resp, err := p.opt.Client.Do(req)
			if err != nil {
				b.healthy.Store(false)
				b.note(err)
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if role := resp.Header.Get(repl.HeaderRole); role != "" {
				b.role.Store(role)
			} else {
				// An unreplicated backend has no role header; it accepts
				// writes, so it stands in as the leader.
				b.role.Store(repl.RoleLeader.String())
			}
			if resp.StatusCode == http.StatusOK {
				b.healthy.Store(true)
				b.fails.Store(0)
				b.note(nil)
			} else {
				b.healthy.Store(false)
				b.note(fmt.Errorf("readyz: %s", resp.Status))
			}
		}(b)
	}
	wg.Wait()
}

// leader returns the healthy leader, or nil while there is none.
func (p *Proxy) leader() *replica {
	for _, b := range p.replicas {
		if b.healthy.Load() && b.role.Load() == repl.RoleLeader.String() {
			return b
		}
	}
	return nil
}

// readTargets returns the healthy replicas in round-robin order.
func (p *Proxy) readTargets() []*replica {
	n := len(p.replicas)
	start := int(p.rr.Add(1)) % n
	var out []*replica
	for i := range n {
		if b := p.replicas[(start+i)%n]; b.healthy.Load() {
			out = append(out, b)
		}
	}
	return out
}

// isRead classifies a request: queries, match decisions, entity gets
// and snapshots fan out across replicas; everything else — writes,
// failover, replication traffic — goes to the leader.
func isRead(r *http.Request) bool {
	path := strings.TrimSuffix(r.URL.Path, "/")
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return path != "/v1/wal"
	}
	if r.Method != http.MethodPost {
		return false
	}
	switch path {
	case "/v1/query", "/v1/query/batch", "/v1/match", "/v1/resolve/stream":
		return true
	}
	return false
}

// isStream reports whether the request is the NDJSON resolve stream,
// which must pipe through unbuffered in both directions.
func isStream(r *http.Request) bool {
	return r.Method == http.MethodPost &&
		strings.TrimSuffix(r.URL.Path, "/") == "/v1/resolve/stream"
}

// hopHeaders are the hop-by-hop headers of RFC 9110 §7.6.1 (plus the
// de-facto Proxy-Connection): they describe one transport connection
// and must not be forwarded in either direction.
var hopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Connection", "Proxy-Authenticate",
	"Proxy-Authorization", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// stripHopByHop removes hop-by-hop headers from h: first everything the
// Connection header names (hop-by-hop by declaration), then the
// standard set.
func stripHopByHop(h http.Header) {
	for _, v := range h.Values("Connection") {
		for _, name := range strings.Split(v, ",") {
			if name = strings.TrimSpace(name); name != "" {
				h.Del(name)
			}
		}
	}
	for _, name := range hopHeaders {
		h.Del(name)
	}
}

// Handler returns the proxy's route tree: its own health and stats
// endpoints, and the forwarder for everything else.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		if p.leader() == nil {
			writeErr(w, http.StatusServiceUnavailable, CodeNotLeader, errors.New("no healthy leader among replicas"))
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /v1/stats", p.handleStats)
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		p.reg.WriteText(w)
	})
	mux.HandleFunc("/", p.forward)
	return mux
}

func (p *Proxy) handleStats(w http.ResponseWriter, r *http.Request) {
	type rep struct {
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
		Role    string `json:"role"`
		Fails   int64  `json:"fails"`
		LastErr string `json:"last_error,omitempty"`
	}
	out := struct {
		Leader   string `json:"leader,omitempty"`
		Replicas []rep  `json:"replicas"`
	}{}
	if l := p.leader(); l != nil {
		out.Leader = l.url
	}
	for _, b := range p.replicas {
		out.Replicas = append(out.Replicas, rep{
			URL: b.url, Healthy: b.healthy.Load(), Role: b.role.Load().(string),
			Fails: b.fails.Load(), LastErr: b.lastErr.Load().(string),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// forward relays one request. Reads retry across the healthy rotation
// on transport errors (they are idempotent); writes go to the leader
// exactly once. The body is buffered — bounded by MaxBody — so a
// retried read can resend it; the resolve stream takes the unbuffered
// path instead.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request) {
	if isStream(r) {
		p.forwardStream(w, r)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, p.opt.MaxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				fmt.Errorf("request body exceeds the %d-byte cap", mbe.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	var targets []*replica
	if isRead(r) {
		p.reads.Inc()
		targets = p.readTargets()
		if len(targets) == 0 {
			writeErr(w, http.StatusServiceUnavailable, CodeDegraded, errors.New("no healthy replicas"))
			return
		}
	} else {
		p.writes.Inc()
		l := p.leader()
		if l == nil {
			writeErr(w, http.StatusServiceUnavailable, CodeNotLeader, errors.New("no healthy leader among replicas"))
			return
		}
		targets = []*replica{l}
	}
	var lastErr error
	for _, b := range targets {
		req, err := http.NewRequestWithContext(r.Context(), r.Method, b.url+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			lastErr = err
			break
		}
		req.Header = r.Header.Clone()
		stripHopByHop(req.Header)
		resp, err := p.opt.Client.Do(req)
		if err != nil {
			p.forwdErrs.Inc()
			b.note(err)
			if b.fails.Add(1) >= int64(p.opt.EjectAfter) {
				b.healthy.Store(false)
			}
			lastErr = err
			continue
		}
		b.fails.Store(0)
		copyEndToEnd(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		return
	}
	writeErr(w, http.StatusBadGateway, CodeInternal, fmt.Errorf("forwarding failed: %w", lastErr))
}

// forwardStream relays the NDJSON resolve stream without buffering
// either direction: the feed pipes straight through to one healthy
// replica (no retry — the body is consumed as it forwards) and response
// lines flush to the client as the backend emits them.
func (p *Proxy) forwardStream(w http.ResponseWriter, r *http.Request) {
	// The backend answers while the client's feed is still streaming in;
	// without full duplex the HTTP/1 server would truncate the body on
	// the proxy's first response write.
	http.NewResponseController(w).EnableFullDuplex()
	p.reads.Inc()
	targets := p.readTargets()
	if len(targets) == 0 {
		writeErr(w, http.StatusServiceUnavailable, CodeDegraded, errors.New("no healthy replicas"))
		return
	}
	b := targets[0]
	req, err := http.NewRequestWithContext(r.Context(), r.Method, b.url+r.URL.RequestURI(), r.Body)
	if err != nil {
		writeErr(w, http.StatusBadGateway, CodeInternal, fmt.Errorf("forwarding failed: %w", err))
		return
	}
	req.Header = r.Header.Clone()
	stripHopByHop(req.Header)
	resp, err := p.opt.Client.Do(req)
	if err != nil {
		p.forwdErrs.Inc()
		b.note(err)
		if b.fails.Add(1) >= int64(p.opt.EjectAfter) {
			b.healthy.Store(false)
		}
		writeErr(w, http.StatusBadGateway, CodeInternal, fmt.Errorf("forwarding failed: %w", err))
		return
	}
	defer resp.Body.Close()
	b.fails.Store(0)
	copyEndToEnd(w.Header(), resp.Header)
	// The backend's Connection: close is hop-by-hop and was stripped; the
	// client-facing connection needs its own, for the same reason the
	// backend set one — an early-terminated feed can't be drained.
	w.Header().Set("Connection", "close")
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
}

// copyEndToEnd copies the backend's response headers into dst with the
// hop-by-hop set stripped — those belong to the proxy↔backend
// connection, not the client's.
func copyEndToEnd(dst, src http.Header) {
	cleaned := src.Clone()
	stripHopByHop(cleaned)
	for k, vs := range cleaned {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// flushCopy copies src to w, flushing after every chunk, so streamed
// result lines reach the client as they arrive instead of sitting in
// the proxy's response buffer until the feed ends.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	f, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if f != nil {
				f.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}
