// Package dedup extends the library to Dirty ER (Deduplication), the
// second ER task of the paper's preliminaries: a single collection E with
// duplicates in itself. The paper evaluates Clean-Clean ER only; this
// package adapts every Clean-Clean filter to the dirty setting by running
// it with E as both index and query collection and canonicalizing the
// result — self-pairs are dropped, mirrored pairs (i,j)/(j,i) collapse
// into one unordered pair.
package dedup

import (
	"sort"

	"erfilter/internal/core"
	"erfilter/internal/entity"
)

// Pair is an unordered pair of entities of one collection, stored with
// A < B.
type Pair struct {
	A, B int32
}

// Canon returns the canonical unordered form of (a, b), and ok=false for
// self-pairs.
func Canon(a, b int32) (Pair, bool) {
	if a == b {
		return Pair{}, false
	}
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}, true
}

// Truth is the set of true duplicate pairs of a dirty collection.
type Truth struct {
	pairs map[Pair]struct{}
}

// NewTruth builds the groundtruth from (possibly unordered, possibly
// repeated) index pairs; self-pairs are ignored.
func NewTruth(pairs []Pair) *Truth {
	t := &Truth{pairs: map[Pair]struct{}{}}
	for _, p := range pairs {
		if c, ok := Canon(p.A, p.B); ok {
			t.pairs[c] = struct{}{}
		}
	}
	return t
}

// Size returns the number of duplicate pairs.
func (t *Truth) Size() int { return len(t.pairs) }

// Contains reports whether the unordered pair is a duplicate.
func (t *Truth) Contains(p Pair) bool {
	c, ok := Canon(p.A, p.B)
	if !ok {
		return false
	}
	_, found := t.pairs[c]
	return found
}

// Task is one Dirty ER (deduplication) task.
type Task struct {
	Name  string
	Data  *entity.Dataset
	Truth *Truth
	// BestAttribute for schema-based settings.
	BestAttribute string
}

// cleanCleanTask views the dirty collection as a Clean-Clean task with
// E1 = E2 = E. The Clean-Clean groundtruth is left empty: evaluation runs
// against the dirty Truth after canonicalization.
func (t *Task) cleanCleanTask() *entity.Task {
	return &entity.Task{
		Name:          t.Name,
		E1:            t.Data,
		E2:            t.Data,
		Truth:         entity.NewGroundTruth(nil),
		BestAttribute: t.BestAttribute,
	}
}

// Outcome is the deduplicated filtering result.
type Outcome struct {
	Pairs  []Pair
	Timing core.Timing
}

// Run executes a Clean-Clean filter on the dirty collection and
// canonicalizes its candidates.
func Run(f core.Filter, task *Task, setting entity.SchemaSetting) (*Outcome, error) {
	in := core.NewInput(task.cleanCleanTask(), setting)
	out, err := f.Run(in)
	if err != nil {
		return nil, err
	}
	seen := map[Pair]struct{}{}
	var pairs []Pair
	for _, p := range out.Pairs {
		c, ok := Canon(p.Left, p.Right)
		if !ok {
			continue
		}
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		pairs = append(pairs, c)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	return &Outcome{Pairs: pairs, Timing: out.Timing}, nil
}

// Evaluate computes PC and PQ of a dirty candidate set.
func Evaluate(pairs []Pair, truth *Truth) core.Metrics {
	seen := map[Pair]struct{}{}
	matches := 0
	for _, p := range pairs {
		c, ok := Canon(p.A, p.B)
		if !ok {
			continue
		}
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		if truth.Contains(c) {
			matches++
		}
	}
	m := core.Metrics{Candidates: len(seen), Matches: matches}
	if truth.Size() > 0 {
		m.PC = float64(matches) / float64(truth.Size())
	}
	if len(seen) > 0 {
		m.PQ = float64(matches) / float64(len(seen))
	}
	return m
}
