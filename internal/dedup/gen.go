package dedup

import (
	"erfilter/internal/datagen"
	"erfilter/internal/entity"
)

// GenerateDirty builds a synthetic dirty collection: n base entities of
// which dups have one noisy duplicate rendering appended, yielding a
// collection of n+dups profiles with a known groundtruth. The generator
// reuses the Clean-Clean machinery of package datagen.
func GenerateDirty(n, dups int, seed uint64) *Task {
	if dups > n {
		dups = n
	}
	cc := datagen.Generate(datagen.QuickSpec(n, dups, dups, seed))
	// cc.E1 holds n profiles whose first dups objects also appear
	// (re-rendered with independent noise) as cc.E2. Concatenating both
	// gives a dirty collection.
	profiles := make([]entity.Profile, 0, n+dups)
	for _, p := range cc.E1.Profiles {
		profiles = append(profiles, entity.Profile{Attrs: p.Attrs})
	}
	offset := int32(len(profiles))
	for _, p := range cc.E2.Profiles {
		profiles = append(profiles, entity.Profile{Attrs: p.Attrs})
	}
	var truth []Pair
	for _, p := range cc.Truth.Pairs() {
		truth = append(truth, Pair{A: p.Left, B: offset + p.Right})
	}
	return &Task{
		Name:          "dirty",
		Data:          entity.New("E", profiles),
		Truth:         NewTruth(truth),
		BestAttribute: cc.BestAttribute,
	}
}
