package dedup_test

import (
	"fmt"

	"erfilter/internal/dedup"
)

// ExampleCanon shows the unordered-pair canonicalization of Dirty ER.
func ExampleCanon() {
	p, ok := dedup.Canon(5, 2)
	fmt.Println(p.A, p.B, ok)
	_, self := dedup.Canon(3, 3)
	fmt.Println(self)
	// Output:
	// 2 5 true
	// false
}

// ExampleRunPBW deduplicates a dirty collection with the native blocking
// workflow.
func ExampleRunPBW() {
	task := dedup.GenerateDirty(100, 40, 7)
	out := dedup.RunPBW(task, 0 /* schema-agnostic */)
	m := dedup.Evaluate(out.Pairs, task.Truth)
	fmt.Printf("PC above 0.9: %v; search space reduced: %v\n",
		m.PC >= 0.9, m.Candidates < task.Data.Len()*task.Data.Len()/4)
	// Output: PC above 0.9: true; search space reduced: true
}
