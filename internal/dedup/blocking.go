package dedup

import (
	"sort"

	"erfilter/internal/cleaning"
	"erfilter/internal/entity"
	"erfilter/internal/text"
)

// The Clean-Clean adapter of Run misrepresents blocking statistics in the
// dirty setting: with E1 = E2 every block is mirrored, its comparison
// count becomes k² instead of the true k·(k-1)/2, and single-entity
// blocks (harmless self-pairs) distort Block Purging's cardinality
// statistics. Blocking workflows therefore get a native dirty
// implementation here, with blocks over one collection and unordered
// candidate pairs; the NN methods remain served by Run, whose
// index/query structure is unaffected by self-joins.

// dirtyBlock is one block over a single collection.
type dirtyBlock struct {
	key      string
	entities []int32
}

func (b *dirtyBlock) comparisons() float64 {
	k := float64(len(b.entities))
	return k * (k - 1) / 2
}

// buildDirtyBlocks groups entities by token; blocks with fewer than two
// entities produce no comparisons and are dropped.
func buildDirtyBlocks(v *entity.View) []dirtyBlock {
	m := map[string][]int32{}
	for i := 0; i < v.Len(); i++ {
		for _, tok := range text.Dedup(text.Tokenize(v.Text(i))) {
			m[tok] = append(m[tok], int32(i))
		}
	}
	keys := make([]string, 0, len(m))
	for k, es := range m {
		if len(es) >= 2 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]dirtyBlock, 0, len(keys))
	for _, k := range keys {
		out = append(out, dirtyBlock{key: k, entities: m[k]})
	}
	return out
}

// purgeDirty applies comparison-based Block Purging with the dirty
// comparison semantics, reusing the same smooth-factor rule as the
// Clean-Clean implementation.
func purgeDirty(blocks []dirtyBlock, smoothFactor float64) []dirtyBlock {
	if len(blocks) == 0 {
		return blocks
	}
	type stat struct{ card, bc, cc float64 }
	byCard := map[float64]*stat{}
	for i := range blocks {
		card := blocks[i].comparisons()
		s := byCard[card]
		if s == nil {
			s = &stat{card: card}
			byCard[card] = s
		}
		s.bc += float64(len(blocks[i].entities))
		s.cc += card
	}
	stats := make([]stat, 0, len(byCard))
	for _, s := range byCard {
		stats = append(stats, *s)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].card < stats[j].card })
	for i := 1; i < len(stats); i++ {
		stats[i].bc += stats[i-1].bc
		stats[i].cc += stats[i-1].cc
	}
	maxComparisons := stats[len(stats)-1].card
	for i := 1; i < len(stats); i++ {
		prev, cur := &stats[i-1], &stats[i]
		if cur.cc*prev.bc > smoothFactor*prev.cc*cur.bc {
			maxComparisons = prev.card
			break
		}
	}
	out := blocks[:0:0]
	for i := range blocks {
		if blocks[i].comparisons() <= maxComparisons {
			out = append(out, blocks[i])
		}
	}
	return out
}

// RunPBW runs the parameter-free blocking workflow (Standard Blocking +
// Block Purging + Comparison Propagation) natively on a dirty collection.
func RunPBW(task *Task, setting entity.SchemaSetting) *Outcome {
	v := entity.NewView(task.Data, setting, task.BestAttribute)
	blocks := purgeDirty(buildDirtyBlocks(v), cleaning.DefaultSmoothFactor)
	seen := map[Pair]struct{}{}
	var pairs []Pair
	for i := range blocks {
		es := blocks[i].entities
		for a := 0; a < len(es); a++ {
			for b := a + 1; b < len(es); b++ {
				if c, ok := Canon(es[a], es[b]); ok {
					if _, dup := seen[c]; !dup {
						seen[c] = struct{}{}
						pairs = append(pairs, c)
					}
				}
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	return &Outcome{Pairs: pairs}
}
