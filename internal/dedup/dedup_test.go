package dedup

import (
	"testing"

	"erfilter/internal/core"
	"erfilter/internal/entity"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

func TestCanon(t *testing.T) {
	if _, ok := Canon(3, 3); ok {
		t.Fatal("self pair must be rejected")
	}
	a, _ := Canon(5, 2)
	b, _ := Canon(2, 5)
	if a != b || a.A != 2 || a.B != 5 {
		t.Fatalf("canonicalization wrong: %v %v", a, b)
	}
}

func TestTruth(t *testing.T) {
	tr := NewTruth([]Pair{{A: 1, B: 2}, {A: 2, B: 1}, {A: 3, B: 3}})
	if tr.Size() != 1 {
		t.Fatalf("size = %d", tr.Size())
	}
	if !tr.Contains(Pair{A: 2, B: 1}) {
		t.Fatal("unordered contains failed")
	}
	if tr.Contains(Pair{A: 3, B: 3}) {
		t.Fatal("self pair must not match")
	}
}

func TestGenerateDirtyShape(t *testing.T) {
	task := GenerateDirty(50, 20, 7)
	if task.Data.Len() != 70 {
		t.Fatalf("collection size = %d", task.Data.Len())
	}
	if task.Truth.Size() != 20 {
		t.Fatalf("duplicates = %d", task.Truth.Size())
	}
}

func TestRunDeduplication(t *testing.T) {
	task := GenerateDirty(60, 25, 11)
	f := &core.KNNJoinFilter{Clean: true, Model: text.Model{N: 3}, Measure: sparse.Cosine, K: 2}
	out, err := Run(f, task, entity.SchemaAgnostic)
	if err != nil {
		t.Fatal(err)
	}
	// No self pairs, all canonical, no duplicates.
	seen := map[Pair]bool{}
	for _, p := range out.Pairs {
		if p.A >= p.B {
			t.Fatalf("non-canonical pair %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
	m := Evaluate(out.Pairs, task.Truth)
	if m.PC < 0.8 {
		t.Fatalf("dedup PC = %.2f", m.PC)
	}
	if m.Candidates >= task.Data.Len()*task.Data.Len()/2 {
		t.Fatal("no search-space reduction")
	}
}

func TestRunBlockingDedup(t *testing.T) {
	task := GenerateDirty(40, 15, 13)
	out := RunPBW(task, entity.SchemaAgnostic)
	m := Evaluate(out.Pairs, task.Truth)
	if m.PC < 0.85 {
		t.Fatalf("PBW dedup PC = %.2f", m.PC)
	}
	total := task.Data.Len() * (task.Data.Len() - 1) / 2
	if m.Candidates >= total {
		t.Fatal("no reduction over the full pair space")
	}
	// All pairs canonical and distinct.
	seen := map[Pair]bool{}
	for _, p := range out.Pairs {
		if p.A >= p.B || seen[p] {
			t.Fatalf("bad pair %v", p)
		}
		seen[p] = true
	}
}

func TestDirtyPurgeDropsStopwordBlocks(t *testing.T) {
	// Many tiny blocks plus one giant block.
	blocks := make([]dirtyBlock, 0, 21)
	for i := 0; i < 20; i++ {
		blocks = append(blocks, dirtyBlock{key: "small", entities: []int32{int32(i), int32(i + 1)}})
	}
	big := make([]int32, 60)
	for i := range big {
		big[i] = int32(i)
	}
	blocks = append(blocks, dirtyBlock{key: "the", entities: big})
	out := purgeDirty(blocks, 1.025)
	for i := range out {
		if out[i].key == "the" {
			t.Fatal("giant block survived purging")
		}
	}
	if len(out) != 20 {
		t.Fatalf("kept %d blocks", len(out))
	}
}

func TestEvaluateHandlesJunk(t *testing.T) {
	tr := NewTruth([]Pair{{A: 0, B: 1}})
	m := Evaluate([]Pair{{A: 1, B: 0}, {A: 0, B: 1}, {A: 2, B: 2}}, tr)
	if m.Candidates != 1 || m.PC != 1 || m.PQ != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}
