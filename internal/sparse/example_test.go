package sparse_test

import (
	"fmt"

	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

// ExampleKNNJoin pairs every query entity with its nearest indexed
// entities under cosine similarity of token sets.
func ExampleKNNJoin() {
	corpus := sparse.BuildCorpus(
		[]string{"canon powershot a540", "nikon coolpix p100"},
		[]string{"canon powershot a540 camera"},
		text.Model{N: 1},
	)
	pairs := sparse.KNNJoin(corpus, sparse.Cosine, 1, false)
	fmt.Println(pairs)
	// Output: [(0,0)]
}

// ExampleEpsJoin returns every pair whose similarity reaches the
// threshold.
func ExampleEpsJoin() {
	corpus := sparse.BuildCorpus(
		[]string{"a b c", "x y"},
		[]string{"a b c", "x y z"},
		text.Model{N: 1},
	)
	fmt.Println(len(sparse.EpsJoin(corpus, sparse.Jaccard, 0.5)))
	// Output: 2
}

// ExampleMeasure_Sim shows the three normalized set similarities.
func ExampleMeasure_Sim() {
	// |A∩B| = 2, |A| = |B| = 3.
	fmt.Printf("cosine=%.2f dice=%.2f jaccard=%.2f\n",
		sparse.Cosine.Sim(2, 3, 3),
		sparse.Dice.Sim(2, 3, 3),
		sparse.Jaccard.Sim(2, 3, 3))
	// Output: cosine=0.67 dice=0.67 jaccard=0.50
}
