package sparse

import (
	"fmt"
	"math"
	"sort"
)

// IncNeighbor is one query result of an incremental index: the external
// entity id of an indexed set and its similarity to the query.
type IncNeighbor struct {
	ID  int64
	Sim float64
}

// Scratch holds the per-query stamped-counter buffers of an incremental
// snapshot query. Snapshots are immutable and may be queried from many
// goroutines at once, so each goroutine brings its own Scratch (typically
// from a sync.Pool); the zero value is ready to use and grows on demand.
type Scratch struct {
	counts []int32
	// round/stamp are int64: a pooled Scratch lives for the process
	// lifetime, and a narrower counter could wrap and false-match a slot
	// stamped exactly one wrap earlier, inflating its overlap count.
	stamp []int64
	round int64
	found []int32
}

// grow ensures the buffers cover n slots. New entries are zeroed, which is
// safe because rounds start at 1: a zero stamp never equals a live round.
func (sc *Scratch) grow(n int) {
	if len(sc.counts) >= n {
		return
	}
	counts := make([]int32, n)
	stamp := make([]int64, n)
	copy(counts, sc.counts)
	copy(stamp, sc.stamp)
	sc.counts, sc.stamp = counts, stamp
}

// IncIndex is the incremental variant of the ScanCount inverted index: it
// supports Add and Remove of token sets identified by stable external
// int64 ids, deletion by tombstone, periodic compaction, and Freeze, which
// publishes an immutable point-in-time Snapshot for lock-free concurrent
// queries.
//
// Slots are assigned append-only, so as long as ids are added in
// increasing order (the online resolver allocates them monotonically and
// never reuses one), slot order equals id order and every snapshot query
// is equal to the same query against a batch Index built with NewIndex
// over the surviving sets in ascending-id order — the property the
// equivalence tests check. Compaction preserves slot order, so the
// invariant survives any Add/Remove/Compact interleaving.
//
// An IncIndex itself is a single-writer structure: Add, Remove, Compact
// and Freeze must be externally serialized. Snapshots taken by Freeze stay
// valid and immutable forever after.
type IncIndex struct {
	postings [][]int32 // token id → slots holding that token
	sizes    []int32   // slot → token-set size
	ids      []int64   // slot → external id
	live     []bool    // slot → not tombstoned
	dead     int       // tombstone count
	slotOf   map[int64]int32
}

// NewIncIndex returns an empty incremental index.
func NewIncIndex() *IncIndex {
	return &IncIndex{slotOf: make(map[int64]int32)}
}

// Len returns the number of live (non-tombstoned) sets.
func (x *IncIndex) Len() int { return len(x.ids) - x.dead }

// Dead returns the number of tombstoned slots awaiting compaction.
func (x *IncIndex) Dead() int { return x.dead }

// Add indexes the token set under the external id. Token ids may exceed
// anything seen before; the posting table grows as needed. It is an error
// to add an id that is currently indexed (Remove it first).
func (x *IncIndex) Add(id int64, set []int32) error {
	if _, ok := x.slotOf[id]; ok {
		return fmt.Errorf("sparse: id %d already indexed", id)
	}
	slot := int32(len(x.ids))
	x.ids = append(x.ids, id)
	x.sizes = append(x.sizes, int32(len(set)))
	x.live = append(x.live, true)
	x.slotOf[id] = slot
	for _, tok := range set {
		if int(tok) >= len(x.postings) {
			grown := make([][]int32, int(tok)+1)
			copy(grown, x.postings)
			x.postings = grown
		}
		x.postings[tok] = append(x.postings[tok], slot)
	}
	return nil
}

// Remove tombstones the set indexed under id, reporting whether it was
// present. The slot is reclaimed by the next Compact.
func (x *IncIndex) Remove(id int64) bool {
	slot, ok := x.slotOf[id]
	if !ok {
		return false
	}
	delete(x.slotOf, id)
	x.live[slot] = false
	x.dead++
	return true
}

// Compact rewrites the index without the tombstoned slots, preserving the
// relative order of the survivors. All arrays are freshly allocated, so
// previously frozen snapshots remain valid and unchanged.
func (x *IncIndex) Compact() {
	if x.dead == 0 {
		return
	}
	n := len(x.ids) - x.dead
	remap := make([]int32, len(x.ids)) // old slot → new slot, -1 when dead
	ids := make([]int64, 0, n)
	sizes := make([]int32, 0, n)
	live := make([]bool, n)
	for slot := range x.ids {
		if !x.live[slot] {
			remap[slot] = -1
			continue
		}
		remap[slot] = int32(len(ids))
		ids = append(ids, x.ids[slot])
		sizes = append(sizes, x.sizes[slot])
	}
	for i := range live {
		live[i] = true
	}
	postings := make([][]int32, len(x.postings))
	for tok, list := range x.postings {
		var out []int32
		for _, slot := range list {
			if ns := remap[slot]; ns >= 0 {
				out = append(out, ns)
			}
		}
		postings[tok] = out
	}
	x.postings, x.ids, x.sizes, x.live, x.dead = postings, ids, sizes, live, 0
	slotOf := make(map[int64]int32, len(ids))
	for slot, id := range ids {
		slotOf[id] = int32(slot)
	}
	x.slotOf = slotOf
}

// Freeze publishes an immutable point-in-time snapshot. The snapshot
// shares the append-only posting lists with the index (a later Add may
// extend a shared backing array strictly beyond the snapshot's recorded
// lengths, which the snapshot never reads) and takes its own copy of the
// tombstone bits, the only state mutated in place. Cost is O(tokens +
// slots) header and byte copies; no set data is duplicated.
func (x *IncIndex) Freeze() *IncSnapshot {
	return &IncSnapshot{
		postings: append([][]int32(nil), x.postings...),
		sizes:    x.sizes[:len(x.sizes):len(x.sizes)],
		ids:      x.ids[:len(x.ids):len(x.ids)],
		live:     append([]bool(nil), x.live...),
		count:    x.Len(),
	}
}

// IncSnapshot is an immutable view of an IncIndex at one instant. Any
// number of goroutines may query it concurrently, each with its own
// Scratch; it never blocks and never observes later writes.
type IncSnapshot struct {
	postings [][]int32
	sizes    []int32
	ids      []int64
	live     []bool
	count    int
}

// Len returns the number of live sets visible to the snapshot.
func (s *IncSnapshot) Len() int { return s.count }

// overlaps merge-counts posting lists and invokes fn for every live slot
// sharing at least one token with the query.
func (s *IncSnapshot) overlaps(query []int32, sc *Scratch, fn func(slot int32, overlap int)) {
	sc.grow(len(s.ids))
	sc.round++
	sc.found = sc.found[:0]
	for _, tok := range query {
		if int(tok) >= len(s.postings) {
			continue
		}
		for _, slot := range s.postings[tok] {
			if sc.stamp[slot] != sc.round {
				sc.stamp[slot] = sc.round
				sc.counts[slot] = 0
				sc.found = append(sc.found, slot)
			}
			sc.counts[slot]++
		}
	}
	for _, slot := range sc.found {
		if s.live[slot] {
			fn(slot, int(sc.counts[slot]))
		}
	}
}

// RangeQuery returns the live sets whose similarity to the query is at
// least eps, best first (ties broken by ascending id). It matches
// Index.RangeQuery over the surviving sets up to result order.
func (s *IncSnapshot) RangeQuery(query []int32, m Measure, eps float64, sc *Scratch) []IncNeighbor {
	var out []IncNeighbor
	qs := len(query)
	s.overlaps(query, sc, func(slot int32, overlap int) {
		if sim := m.Sim(overlap, qs, int(s.sizes[slot])); sim >= eps {
			out = append(out, IncNeighbor{ID: s.ids[slot], Sim: sim})
		}
	})
	sortNeighbors(out)
	return out
}

// KNNQuery returns the live sets having the k highest distinct similarity
// values to the query, best first, with the same distinct-value tie
// semantics as Index.KNNQuery. Zero-similarity sets are never returned.
func (s *IncSnapshot) KNNQuery(query []int32, m Measure, k int, sc *Scratch) []IncNeighbor {
	if k <= 0 {
		return nil
	}
	var cands []IncNeighbor
	qs := len(query)
	s.overlaps(query, sc, func(slot int32, overlap int) {
		if sim := m.Sim(overlap, qs, int(s.sizes[slot])); sim > 0 {
			cands = append(cands, IncNeighbor{ID: s.ids[slot], Sim: sim})
		}
	})
	sortNeighbors(cands)
	distinct := 0
	lastSim := math.Inf(1)
	for i, c := range cands {
		if c.Sim != lastSim {
			if distinct == k {
				return cands[:i]
			}
			distinct++
			lastSim = c.Sim
		}
	}
	return cands
}

func sortNeighbors(ns []IncNeighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Sim != ns[j].Sim {
			return ns[i].Sim > ns[j].Sim
		}
		return ns[i].ID < ns[j].ID
	})
}
