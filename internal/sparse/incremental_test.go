package sparse

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// mix scrambles a uint64 into a pseudo-random stream for deriving
// deterministic sets from property-test inputs.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// setFrom derives a small token set over a 24-token universe.
func setFrom(v uint64) []int32 {
	v = mix(v)
	n := 1 + int(v%5)
	seen := map[int32]bool{}
	var out []int32
	for i := 0; i < n; i++ {
		v = mix(v + uint64(i) + 1)
		tok := int32(v % 24)
		if !seen[tok] {
			seen[tok] = true
			out = append(out, tok)
		}
	}
	return out
}

// mirror is the reference model: surviving id → token set.
type mirror map[int64][]int32

// batchIndex builds a plain batch Index over the survivors in ascending
// id order and returns it with the position→id mapping.
func (m mirror) batchIndex() (*Index, []int64) {
	ids := make([]int64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sets := make([][]int32, len(ids))
	for i, id := range ids {
		sets[i] = m[id]
	}
	return NewIndex(sets, 24), ids
}

// applyOps replays a random op sequence against both an IncIndex and the
// mirror. Ops: v%5==0 → remove a surviving id, v%11==0 → compact,
// otherwise add a derived set.
func applyOps(ops []uint64) (*IncIndex, mirror) {
	idx := NewIncIndex()
	m := mirror{}
	var nextID int64
	var liveIDs []int64
	for _, v := range ops {
		switch {
		case v%5 == 0 && len(liveIDs) > 0:
			i := int(mix(v) % uint64(len(liveIDs)))
			id := liveIDs[i]
			liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
			if !idx.Remove(id) {
				panic("remove of live id failed")
			}
			delete(m, id)
		case v%11 == 0:
			idx.Compact()
		default:
			set := setFrom(v)
			id := nextID
			nextID++
			if err := idx.Add(id, set); err != nil {
				panic(err)
			}
			m[id] = set
			liveIDs = append(liveIDs, id)
		}
	}
	return idx, m
}

// sameNeighbors compares incremental results with batch results mapped
// through the position→id table.
func sameNeighbors(inc []IncNeighbor, batch []Neighbor, ids []int64) bool {
	if len(inc) != len(batch) {
		return false
	}
	for i := range inc {
		if inc[i].ID != ids[batch[i].Entity] || inc[i].Sim != batch[i].Sim {
			return false
		}
	}
	return true
}

// TestIncIndexEquivalenceQuick is the interleaving property test: any
// sequence of Add/Remove/Compact yields snapshot query results identical
// to a batch index built from the surviving sets.
func TestIncIndexEquivalenceQuick(t *testing.T) {
	prop := func(ops []uint64, qseed uint64) bool {
		idx, m := applyOps(ops)
		snap := idx.Freeze()
		batch, ids := m.batchIndex()
		if snap.Len() != len(ids) {
			return false
		}
		for qi := 0; qi < 4; qi++ {
			query := setFrom(qseed + uint64(qi))
			for _, measure := range Measures() {
				for _, k := range []int{1, 3} {
					inc := snap.KNNQuery(query, measure, k, &Scratch{})
					ref := batch.KNNQuery(query, measure, k)
					if !sameNeighbors(inc, ref, ids) {
						t.Logf("kNN mismatch: measure=%v k=%d inc=%v ref=%v", measure, k, inc, ref)
						return false
					}
				}
				for _, eps := range []float64{0.2, 0.5} {
					inc := snap.RangeQuery(query, measure, eps, &Scratch{})
					ref := batch.RangeQuery(query, measure, eps)
					refInc := make([]IncNeighbor, len(ref))
					for i, n := range ref {
						refInc[i] = IncNeighbor{ID: ids[n.Entity], Sim: n.Sim}
					}
					sortNeighbors(refInc)
					if len(inc) != len(refInc) {
						return false
					}
					for i := range inc {
						if inc[i] != refInc[i] {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestIncIndexSnapshotImmutable pins the RCU contract: a frozen snapshot
// keeps answering from its epoch while the index mutates and compacts
// underneath it.
func TestIncIndexSnapshotImmutable(t *testing.T) {
	idx := NewIncIndex()
	for i := int64(0); i < 10; i++ {
		if err := idx.Add(i, setFrom(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := idx.Freeze()
	query := setFrom(99)
	before := snap.KNNQuery(query, Jaccard, 5, &Scratch{})

	for i := int64(0); i < 10; i += 2 {
		idx.Remove(i)
	}
	for i := int64(10); i < 200; i++ {
		if err := idx.Add(i, setFrom(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	idx.Compact()
	after := snap.KNNQuery(query, Jaccard, 5, &Scratch{})
	if len(before) != len(after) {
		t.Fatalf("snapshot changed under mutation: %v vs %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("snapshot changed under mutation: %v vs %v", before, after)
		}
	}
	if snap.Len() != 10 {
		t.Fatalf("snapshot Len = %d, want 10", snap.Len())
	}
}

// TestScratchRoundBeyondInt32 pins that a long-lived pooled Scratch keeps
// counting correctly past the int32 range: the round counter is int64, so
// it cannot wrap and false-match a slot stamped one wrap earlier.
func TestScratchRoundBeyondInt32(t *testing.T) {
	idx := NewIncIndex()
	if err := idx.Add(1, []int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	snap := idx.Freeze()
	sc := &Scratch{round: math.MaxInt32}
	for i := 0; i < 3; i++ {
		got := snap.RangeQuery([]int32{1, 2, 3}, Jaccard, 0.5, sc)
		if len(got) != 1 || got[0].Sim != 1 {
			t.Fatalf("round %d past int32: got %v", i, got)
		}
	}
	if sc.round != math.MaxInt32+3 {
		t.Fatalf("round = %d, want %d", sc.round, int64(math.MaxInt32+3))
	}
}

func TestIncIndexAddRemoveCompact(t *testing.T) {
	idx := NewIncIndex()
	if err := idx.Add(7, []int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := idx.Add(7, []int32{4}); err == nil {
		t.Fatal("duplicate add must error")
	}
	if idx.Remove(99) {
		t.Fatal("removing absent id must report false")
	}
	if !idx.Remove(7) {
		t.Fatal("removing live id must report true")
	}
	if idx.Len() != 0 || idx.Dead() != 1 {
		t.Fatalf("len=%d dead=%d", idx.Len(), idx.Dead())
	}
	idx.Compact()
	if idx.Dead() != 0 {
		t.Fatalf("dead after compact = %d", idx.Dead())
	}
	// The id can be reused after removal.
	if err := idx.Add(7, []int32{1}); err != nil {
		t.Fatal(err)
	}
	snap := idx.Freeze()
	got := snap.RangeQuery([]int32{1}, Jaccard, 0.5, &Scratch{})
	if len(got) != 1 || got[0].ID != 7 || got[0].Sim != 1 {
		t.Fatalf("got %v", got)
	}
}
