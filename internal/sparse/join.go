package sparse

import "erfilter/internal/entity"

// EpsJoin performs the range join (ε-Join): it pairs every entity of E2
// with all entities of E1 whose similarity is at least eps. The result is
// independent of which side is indexed, so no RVS parameter exists.
func EpsJoin(c *Corpus, m Measure, eps float64) []entity.Pair {
	idx := NewIndex(c.Sets1, c.NumTokens)
	var out []entity.Pair
	for e2, q := range c.Sets2 {
		for _, n := range idx.RangeQuery(q, m, eps) {
			out = append(out, entity.Pair{Left: n.Entity, Right: int32(e2)})
		}
	}
	return out
}

// KNNJoin performs the k-nearest-neighbor join: every query entity is
// paired with the k most similar indexed entities having distinct
// similarity values (equidistant entities are all included). The join is
// not commutative; reverse selects which collection is indexed:
//
//	reverse=false: E1 is indexed, every e2 ∈ E2 is a query (the default);
//	reverse=true:  E2 is indexed, every e1 ∈ E1 is a query (RVS = ✓).
func KNNJoin(c *Corpus, m Measure, k int, reverse bool) []entity.Pair {
	var out []entity.Pair
	if !reverse {
		idx := NewIndex(c.Sets1, c.NumTokens)
		for e2, q := range c.Sets2 {
			for _, n := range idx.KNNQuery(q, m, k) {
				out = append(out, entity.Pair{Left: n.Entity, Right: int32(e2)})
			}
		}
		return out
	}
	idx := NewIndex(c.Sets2, c.NumTokens)
	for e1, q := range c.Sets1 {
		for _, n := range idx.KNNQuery(q, m, k) {
			out = append(out, entity.Pair{Left: int32(e1), Right: n.Entity})
		}
	}
	return out
}
