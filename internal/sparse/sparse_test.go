package sparse

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"erfilter/internal/entity"
	"erfilter/internal/text"
)

func TestMeasureValues(t *testing.T) {
	// A = {a,b,c}, B = {b,c,d}: overlap 2.
	if got := Cosine.Sim(2, 3, 3); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("cosine = %v", got)
	}
	if got := Dice.Sim(2, 3, 3); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Errorf("dice = %v", got)
	}
	if got := Jaccard.Sim(2, 3, 3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("jaccard = %v", got)
	}
	// Empty sets.
	for _, m := range Measures() {
		if got := m.Sim(0, 0, 5); got != 0 {
			t.Errorf("%s on empty set = %v", m, got)
		}
	}
}

func TestMeasureProperties(t *testing.T) {
	f := func(overlap, a, b uint8) bool {
		o, sa, sb := int(overlap), int(a), int(b)
		if o > sa {
			o = sa
		}
		if o > sb {
			o = sb
		}
		for _, m := range Measures() {
			s := m.Sim(o, sa, sb)
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
			// symmetry
			if s != m.Sim(o, sb, sa) {
				return false
			}
			// identity: full overlap of equal sets gives 1
			if sa > 0 && m.Sim(sa, sa, sa) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuildCorpusSharedDictionary(t *testing.T) {
	c := BuildCorpus([]string{"canon camera"}, []string{"camera bag"}, text.Model{N: 1})
	if c.NumTokens != 3 {
		t.Fatalf("dictionary size = %d, want 3", c.NumTokens)
	}
	// "camera" must map to the same id in both sets.
	common := map[int32]bool{}
	for _, id := range c.Sets1[0] {
		common[id] = true
	}
	shared := 0
	for _, id := range c.Sets2[0] {
		if common[id] {
			shared++
		}
	}
	if shared != 1 {
		t.Fatalf("shared token count = %d, want 1", shared)
	}
}

func naiveOverlap(a, b []int32) int {
	m := map[int32]bool{}
	for _, x := range a {
		m[x] = true
	}
	n := 0
	for _, x := range b {
		if m[x] {
			n++
		}
	}
	return n
}

func TestScanCountMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	numTokens := 50
	mkSet := func() []int32 {
		n := rng.Intn(10) + 1
		seen := map[int32]bool{}
		var s []int32
		for len(s) < n {
			tok := int32(rng.Intn(numTokens))
			if !seen[tok] {
				seen[tok] = true
				s = append(s, tok)
			}
		}
		return s
	}
	var sets [][]int32
	for i := 0; i < 40; i++ {
		sets = append(sets, mkSet())
	}
	idx := NewIndex(sets, numTokens)
	for trial := 0; trial < 30; trial++ {
		q := mkSet()
		got := map[int32]int{}
		idx.Overlaps(q, func(e int32, o int) { got[e] = o })
		for e, set := range sets {
			want := naiveOverlap(q, set)
			if want == 0 {
				if _, ok := got[int32(e)]; ok {
					t.Fatalf("entity %d reported with zero overlap", e)
				}
				continue
			}
			if got[int32(e)] != want {
				t.Fatalf("overlap(%d) = %d, want %d", e, got[int32(e)], want)
			}
		}
	}
}

func naiveEpsJoin(c *Corpus, m Measure, eps float64) map[entity.Pair]bool {
	out := map[entity.Pair]bool{}
	for i, a := range c.Sets1 {
		for j, b := range c.Sets2 {
			if m.Sim(naiveOverlap(a, b), len(a), len(b)) >= eps {
				out[entity.Pair{Left: int32(i), Right: int32(j)}] = true
			}
		}
	}
	return out
}

func testCorpus() *Corpus {
	t1 := []string{
		"canon powershot a540 camera",
		"nikon coolpix p100",
		"sony cybershot dsc w55",
		"olympus stylus",
	}
	t2 := []string{
		"canon powershot a540 6mp camera",
		"nikon coolpix p100 12mp",
		"sony dsc w55 cybershot camera",
		"kodak easyshare",
	}
	return BuildCorpus(t1, t2, text.Model{N: 1})
}

func TestEpsJoinMatchesNaive(t *testing.T) {
	c := testCorpus()
	for _, m := range Measures() {
		for _, eps := range []float64{0.1, 0.3, 0.5, 0.8, 1.0} {
			got := EpsJoin(c, m, eps)
			want := naiveEpsJoin(c, m, eps)
			if len(got) != len(want) {
				t.Fatalf("%s eps=%v: %d pairs, want %d", m, eps, len(got), len(want))
			}
			for _, p := range got {
				if !want[p] {
					t.Fatalf("%s eps=%v: unexpected pair %v", m, eps, p)
				}
			}
		}
	}
}

func TestEpsJoinMonotoneInThreshold(t *testing.T) {
	c := testCorpus()
	prev := math.MaxInt
	for _, eps := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		n := len(EpsJoin(c, Jaccard, eps))
		if n > prev {
			t.Fatalf("candidates not monotone: eps=%v gives %d > %d", eps, n, prev)
		}
		prev = n
	}
}

func TestKNNQueryTieSemantics(t *testing.T) {
	// Three indexed sets; two are equidistant from the query.
	sets := [][]int32{
		{0, 1},    // sim to query {0,1}: jaccard 1
		{0, 2},    // jaccard 1/3
		{1, 2},    // jaccard 1/3 (tie with previous)
		{3, 4, 5}, // 0
	}
	idx := NewIndex(sets, 6)
	got := idx.KNNQuery([]int32{0, 1}, Jaccard, 2)
	// k=2 distinct similarity values: 1.0 and 1/3; the 1/3 tie includes
	// both entities -> 3 results.
	if len(got) != 3 {
		t.Fatalf("kNN with ties returned %d, want 3: %v", len(got), got)
	}
	if got[0].Entity != 0 || got[0].Sim != 1 {
		t.Fatalf("first neighbor wrong: %v", got[0])
	}
	// Zero-similarity entity never returned.
	for _, n := range got {
		if n.Entity == 3 {
			t.Fatal("zero-similarity entity returned")
		}
	}
	// k=1 returns only the top value.
	if got := idx.KNNQuery([]int32{0, 1}, Jaccard, 1); len(got) != 1 {
		t.Fatalf("k=1 returned %v", got)
	}
}

func TestKNNJoinSubsetMonotoneInK(t *testing.T) {
	c := testCorpus()
	pairSet := func(ps []entity.Pair) map[entity.Pair]bool {
		m := map[entity.Pair]bool{}
		for _, p := range ps {
			m[p] = true
		}
		return m
	}
	prev := map[entity.Pair]bool{}
	for k := 1; k <= 4; k++ {
		cur := pairSet(KNNJoin(c, Cosine, k, false))
		for p := range prev {
			if !cur[p] {
				t.Fatalf("k=%d lost pair %v present at k-1", k, p)
			}
		}
		prev = cur
	}
}

func TestKNNJoinNotCommutative(t *testing.T) {
	// Asymmetric setup: E2 has an entity similar to many E1 entities.
	t1 := []string{"a b", "c e", "d f"}
	t2 := []string{"a b c d"}
	c := BuildCorpus(t1, t2, text.Model{N: 1})
	fwd := KNNJoin(c, Jaccard, 1, false) // one query (E2) -> its single best value
	rev := KNNJoin(c, Jaccard, 1, true)  // three queries (E1) -> up to 3 pairs
	if len(rev) <= len(fwd) {
		t.Fatalf("expected reverse join to produce more pairs: fwd=%d rev=%d", len(fwd), len(rev))
	}
}

func TestKNNJoinPerQueryBudget(t *testing.T) {
	c := testCorpus()
	k := 2
	pairs := KNNJoin(c, Cosine, k, false)
	perQuery := map[int32][]float64{}
	for _, p := range pairs {
		perQuery[p.Right] = append(perQuery[p.Right], 0)
	}
	// Each query can exceed k only due to ties; with this corpus ties are
	// absent, so each query yields at most k pairs.
	for q, v := range perQuery {
		if len(v) > k+2 {
			t.Fatalf("query %d has %d neighbors for k=%d", q, len(v), k)
		}
	}
	_ = sort.Float64s
}

func TestKNNQueryMatchesNaive(t *testing.T) {
	c := randomCorpus(40, 30, 30, 9)
	idx := NewIndex(c.Sets1, c.NumTokens)
	for qi, q := range c.Sets2 {
		for _, k := range []int{1, 2, 5} {
			got := idx.KNNQuery(q, Cosine, k)
			// Naive: compute all sims, keep those within the k highest
			// distinct positive values.
			type sv struct {
				e   int32
				sim float64
			}
			var all []sv
			for e, set := range c.Sets1 {
				if s := Cosine.Sim(naiveOverlap(q, set), len(q), len(set)); s > 0 {
					all = append(all, sv{e: int32(e), sim: s})
				}
			}
			sort.Slice(all, func(i, j int) bool { return all[i].sim > all[j].sim })
			distinct := map[float64]bool{}
			want := map[int32]bool{}
			for _, x := range all {
				if !distinct[x.sim] {
					if len(distinct) == k {
						break
					}
					distinct[x.sim] = true
				}
				want[x.e] = true
			}
			if len(got) != len(want) {
				t.Fatalf("query %d k=%d: got %d results, want %d", qi, k, len(got), len(want))
			}
			for _, n := range got {
				if !want[n.Entity] {
					t.Fatalf("query %d k=%d: unexpected entity %d", qi, k, n.Entity)
				}
			}
		}
	}
}
