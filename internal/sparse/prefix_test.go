package sparse

import (
	"math/rand"
	"strings"
	"testing"

	"erfilter/internal/entity"
	"erfilter/internal/text"
)

// randomCorpus builds a corpus of random token strings.
func randomCorpus(n1, n2, vocab int, seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	words := make([]string, vocab)
	for i := range words {
		words[i] = string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
	}
	mk := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			k := 2 + rng.Intn(8)
			toks := make([]string, k)
			for j := range toks {
				toks[j] = words[rng.Intn(vocab)]
			}
			out[i] = strings.Join(toks, " ")
		}
		return out
	}
	return BuildCorpus(mk(n1), mk(n2), text.Model{N: 1})
}

// TestPrefixEpsJoinEquivalence verifies the central exactness property of
// the ε-Join algorithm family: every algorithm returns the same pairs.
func TestPrefixEpsJoinEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		c := randomCorpus(60, 80, 40, seed)
		for _, m := range Measures() {
			for _, eps := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
				want := pairKeySet(EpsJoin(c, m, eps))
				got := pairKeySet(PrefixEpsJoin(c, m, eps))
				if len(got) != len(want) {
					t.Fatalf("seed=%d %s eps=%v: prefix join %d pairs, scancount %d",
						seed, m, eps, len(got), len(want))
				}
				for p := range got {
					if !want[p] {
						t.Fatalf("seed=%d %s eps=%v: extra pair %v", seed, m, eps, p)
					}
				}
			}
		}
	}
}

func pairKeySet(ps []entity.Pair) map[entity.Pair]bool {
	m := make(map[entity.Pair]bool, len(ps))
	for _, p := range ps {
		m[p] = true
	}
	return m
}

func TestPrefixEpsJoinDegenerateThreshold(t *testing.T) {
	c := testCorpus()
	got := PrefixEpsJoin(c, Jaccard, 0)
	want := EpsJoin(c, Jaccard, 0)
	if len(got) != len(want) {
		t.Fatalf("eps=0: %d vs %d", len(got), len(want))
	}
}

func TestTopKJoinGlobalSemantics(t *testing.T) {
	c := testCorpus()
	top := TopKJoin(c, Jaccard, 3)
	if len(top) != 3 {
		t.Fatalf("topk returned %d", len(top))
	}
	// Results sorted by similarity descending.
	for i := 1; i < len(top); i++ {
		if top[i].Sim > top[i-1].Sim {
			t.Fatalf("not sorted: %v", top)
		}
	}
	// Equivalent to eps-join at the k-th similarity: every returned pair
	// reaches that threshold, and no excluded pair exceeds it.
	kth := top[len(top)-1].Sim
	all := EpsJoin(c, Jaccard, kth)
	if len(all) < len(top) {
		t.Fatalf("eps-join at k-th sim returned fewer pairs (%d < %d)", len(all), len(top))
	}
	included := map[entity.Pair]bool{}
	for _, n := range top {
		included[n.Pair] = true
	}
	for _, p := range all {
		if included[p] {
			continue
		}
		// Any non-included pair must not exceed the k-th similarity.
		sim := simOf(c, Jaccard, p)
		if sim > kth {
			t.Fatalf("pair %v with sim %v > k-th %v missing from top-k", p, sim, kth)
		}
	}
}

func simOf(c *Corpus, m Measure, p entity.Pair) float64 {
	return m.Sim(naiveOverlap(c.Sets1[p.Left], c.Sets2[p.Right]),
		len(c.Sets1[p.Left]), len(c.Sets2[p.Right]))
}

func TestTopKJoinEdge(t *testing.T) {
	c := testCorpus()
	if got := TopKJoin(c, Cosine, 0); got != nil {
		t.Fatal("k=0 must return nil")
	}
	huge := TopKJoin(c, Cosine, 10000)
	// Bounded by the number of overlapping pairs.
	if len(huge) > 16 {
		t.Fatalf("topk returned %d pairs", len(huge))
	}
}
