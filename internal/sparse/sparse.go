// Package sparse implements the sparse vector-based NN methods of Section
// IV-C: set-based similarity joins over token sets. It provides the three
// normalized set similarity measures (Cosine, Dice, Jaccard), a ScanCount
// inverted index suited to the low similarity thresholds of ER, the range
// join (ε-Join) and the k-nearest-neighbor join (kNN-Join) with the
// distinct-similarity-value tie semantics of the paper.
package sparse

import (
	"math"
	"sort"

	"erfilter/internal/text"
)

// Measure is a normalized set similarity measure over token sets.
type Measure int

// The similarity measures of Section IV-C.
const (
	// Cosine is |A∩B| / sqrt(|A|·|B|).
	Cosine Measure = iota
	// Dice is 2·|A∩B| / (|A|+|B|).
	Dice
	// Jaccard is |A∩B| / |A∪B|.
	Jaccard
)

// Measures lists all similarity measures.
func Measures() []Measure { return []Measure{Cosine, Dice, Jaccard} }

// String implements fmt.Stringer.
func (m Measure) String() string {
	switch m {
	case Cosine:
		return "Cosine"
	case Dice:
		return "Dice"
	case Jaccard:
		return "Jaccard"
	}
	return "unknown"
}

// Sim computes the similarity from an overlap count and the two set sizes.
// It returns 0 when either set is empty.
func (m Measure) Sim(overlap, sizeA, sizeB int) float64 {
	if sizeA == 0 || sizeB == 0 || overlap == 0 {
		return 0
	}
	o := float64(overlap)
	a, b := float64(sizeA), float64(sizeB)
	switch m {
	case Cosine:
		return o / math.Sqrt(a*b)
	case Dice:
		return 2 * o / (a + b)
	case Jaccard:
		return o / (a + b - o)
	}
	return 0
}

// Corpus holds the dictionary-encoded token sets of the two collections of
// a Clean-Clean ER task. Token ids are shared across both collections so
// overlaps can be counted directly.
type Corpus struct {
	// Sets1 and Sets2 hold the token-id set of every entity. Multiset
	// models are already expanded to counter tokens, so each slice is a
	// set of distinct ids.
	Sets1, Sets2 [][]int32
	// NumTokens is the dictionary size.
	NumTokens int
}

// BuildCorpus tokenizes both collections under the representation model and
// encodes the tokens with a shared dictionary.
func BuildCorpus(texts1, texts2 []string, model text.Model) *Corpus {
	dict := map[string]int32{}
	encode := func(texts []string) [][]int32 {
		sets := make([][]int32, len(texts))
		for i, s := range texts {
			toks := model.Tokens(s)
			ids := make([]int32, 0, len(toks))
			for _, tok := range toks {
				id, ok := dict[tok]
				if !ok {
					id = int32(len(dict))
					dict[tok] = id
				}
				ids = append(ids, id)
			}
			sets[i] = ids
		}
		return sets
	}
	c := &Corpus{}
	c.Sets1 = encode(texts1)
	c.Sets2 = encode(texts2)
	c.NumTokens = len(dict)
	return c
}

// Index is a ScanCount inverted index over one collection of token sets.
// For a query set it merge-counts the posting lists of the query's tokens,
// yielding the overlap with every indexed set that shares at least one
// token. ScanCount is the ε-Join algorithm of choice for the low
// similarity thresholds typical of ER (Section IV-C).
type Index struct {
	postings [][]int32
	sizes    []int
	// scratch state for Query: stamped overlap counters.
	counts []int32
	stamp  []int32
	round  int32
	found  []int32
}

// NewIndex builds a ScanCount index over the given token sets.
func NewIndex(sets [][]int32, numTokens int) *Index {
	idx := &Index{
		postings: make([][]int32, numTokens),
		sizes:    make([]int, len(sets)),
		counts:   make([]int32, len(sets)),
		stamp:    make([]int32, len(sets)),
		round:    0,
	}
	for i := range idx.stamp {
		idx.stamp[i] = -1
	}
	for e, set := range sets {
		idx.sizes[e] = len(set)
		for _, tok := range set {
			idx.postings[tok] = append(idx.postings[tok], int32(e))
		}
	}
	return idx
}

// Size returns the token-set size of indexed entity e.
func (idx *Index) Size(e int32) int { return idx.sizes[e] }

// Overlaps merge-counts the posting lists of the query set and invokes
// fn(entity, overlap) for every indexed entity sharing at least one token.
// The callback order is unspecified. The scratch buffers make repeated
// queries allocation-free; an Index must not be queried concurrently.
func (idx *Index) Overlaps(query []int32, fn func(e int32, overlap int)) {
	idx.round++
	idx.found = idx.found[:0]
	for _, tok := range query {
		if int(tok) >= len(idx.postings) {
			continue
		}
		for _, e := range idx.postings[tok] {
			if idx.stamp[e] != idx.round {
				idx.stamp[e] = idx.round
				idx.counts[e] = 0
				idx.found = append(idx.found, e)
			}
			idx.counts[e]++
		}
	}
	for _, e := range idx.found {
		fn(e, int(idx.counts[e]))
	}
}

// Neighbor is one query result: an indexed entity and its similarity to
// the query set.
type Neighbor struct {
	Entity int32
	Sim    float64
}

// RangeQuery returns the indexed entities whose similarity to the query set
// is at least eps, in unspecified order.
func (idx *Index) RangeQuery(query []int32, m Measure, eps float64) []Neighbor {
	var out []Neighbor
	qs := len(query)
	idx.Overlaps(query, func(e int32, overlap int) {
		if sim := m.Sim(overlap, qs, idx.sizes[e]); sim >= eps {
			out = append(out, Neighbor{Entity: e, Sim: sim})
		}
	})
	return out
}

// KNNQuery returns the indexed entities having the k highest *distinct*
// similarity values to the query, i.e. more than k entities are returned
// when some are equidistant from the query, per the paper's kNN-Join
// semantics. Entities with zero similarity are never returned.
func (idx *Index) KNNQuery(query []int32, m Measure, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	var cands []Neighbor
	qs := len(query)
	idx.Overlaps(query, func(e int32, overlap int) {
		if sim := m.Sim(overlap, qs, idx.sizes[e]); sim > 0 {
			cands = append(cands, Neighbor{Entity: e, Sim: sim})
		}
	})
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Sim != cands[j].Sim {
			return cands[i].Sim > cands[j].Sim
		}
		return cands[i].Entity < cands[j].Entity
	})
	distinct := 0
	lastSim := math.Inf(1)
	for i, c := range cands {
		if c.Sim != lastSim {
			if distinct == k {
				return cands[:i]
			}
			distinct++
			lastSim = c.Sim
		}
	}
	return cands
}
