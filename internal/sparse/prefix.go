package sparse

import (
	"sort"

	"erfilter/internal/entity"
)

// PrefixEpsJoin is an AllPairs-style prefix-filtering range join (Bayardo
// et al., WWW 2007): tokens are ordered by ascending document frequency
// and only the first few ("prefix") tokens of each set are indexed, which
// suffices to find every pair whose similarity reaches eps. It returns
// exactly the same pairs as EpsJoin — the family of exact ε-Join
// algorithms differ only in run-time (Section II) — and is competitive at
// the high thresholds it was designed for, while ScanCount wins at the
// low thresholds typical of ER (which is why the paper employs ScanCount).
func PrefixEpsJoin(c *Corpus, m Measure, eps float64) []entity.Pair {
	if eps <= 0 {
		// Degenerate threshold: every overlapping pair qualifies only via
		// sim >= eps with eps <= 0, which includes zero-overlap pairs; fall
		// back to the full cross product semantics of EpsJoin.
		return EpsJoin(c, m, eps)
	}
	// Order tokens by ascending global frequency so prefixes hold the
	// rarest tokens.
	freq := make([]int, c.NumTokens)
	for _, set := range c.Sets1 {
		for _, t := range set {
			freq[t]++
		}
	}
	for _, set := range c.Sets2 {
		for _, t := range set {
			freq[t]++
		}
	}
	rank := make([]int32, c.NumTokens)
	order := make([]int32, c.NumTokens)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if freq[order[a]] != freq[order[b]] {
			return freq[order[a]] < freq[order[b]]
		}
		return order[a] < order[b]
	})
	for r, t := range order {
		rank[t] = int32(r)
	}
	sortByRank := func(sets [][]int32) [][]int32 {
		out := make([][]int32, len(sets))
		for i, set := range sets {
			s := append([]int32(nil), set...)
			sort.Slice(s, func(a, b int) bool { return rank[s[a]] < rank[s[b]] })
			out[i] = s
		}
		return out
	}
	sets1 := sortByRank(c.Sets1)
	sets2 := sortByRank(c.Sets2)

	// prefixLen returns the number of leading tokens that must be indexed
	// /probed so that any pair with sim >= eps shares at least one prefix
	// token: |s| - ceil(minOverlap(|s|, |s|_other)) + 1. Using the loosest
	// bound (other set size unknown -> minimal required overlap given eps
	// and |s| alone) keeps the join exact for all three measures.
	prefixLen := func(size int) int {
		if size == 0 {
			return 0
		}
		var minOverlap float64
		switch m {
		case Jaccard:
			// J(A,B) >= eps implies overlap >= eps * |A| (since |A∪B| >= |A|).
			minOverlap = eps * float64(size)
		case Dice:
			// D >= eps implies overlap >= eps * |A| / 2... with |B| >= 0;
			// tight bound uses |A|+|B| >= |A|, so overlap >= eps*|A|/2.
			minOverlap = eps * float64(size) / 2
		case Cosine:
			// C >= eps implies overlap >= eps * sqrt(|A|*|B|) >= ... with
			// |B| >= overlap, overlap >= eps^2 * |A|.
			minOverlap = eps * eps * float64(size)
		}
		o := int(minOverlap)
		if float64(o) < minOverlap {
			o++
		}
		if o < 1 {
			o = 1
		}
		p := size - o + 1
		if p < 1 {
			p = 1
		}
		if p > size {
			p = size
		}
		return p
	}

	// Index prefixes of E1.
	postings := make([][]int32, c.NumTokens)
	for e, set := range sets1 {
		for _, t := range set[:prefixLen(len(set))] {
			postings[t] = append(postings[t], int32(e))
		}
	}

	// Probe with prefixes of E2; verify candidates exactly.
	stamp := make([]int32, len(sets1))
	for i := range stamp {
		stamp[i] = -1
	}
	var out []entity.Pair
	for e2, set := range sets2 {
		for _, t := range set[:prefixLen(len(set))] {
			for _, e1 := range postings[t] {
				if stamp[e1] == int32(e2) {
					continue
				}
				stamp[e1] = int32(e2)
				if m.Sim(overlapSorted(sets1[e1], set, rank), len(sets1[e1]), len(set)) >= eps {
					out = append(out, entity.Pair{Left: e1, Right: int32(e2)})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Left != out[j].Left {
			return out[i].Left < out[j].Left
		}
		return out[i].Right < out[j].Right
	})
	return out
}

// overlapSorted merge-counts two rank-sorted token sets.
func overlapSorted(a, b []int32, rank []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		ra, rb := rank[a[i]], rank[b[j]]
		switch {
		case ra == rb:
			n++
			i++
			j++
		case ra < rb:
			i++
		default:
			j++
		}
	}
	return n
}

// TopKJoin computes the global top-k set similarity join (Xiao et al.,
// ICDE 2009): the k highest-similarity pairs across the whole E1 × E2
// space, breaking similarity ties by pair order. The paper contrasts this
// *global* join with kNN-Join's *local* per-query budgets (Section IV-C):
// a global join is equivalent to an ε-Join whose threshold equals the
// k-th best similarity.
func TopKJoin(c *Corpus, m Measure, k int) []Neighbor2 {
	if k <= 0 {
		return nil
	}
	idx := NewIndex(c.Sets1, c.NumTokens)
	var all []Neighbor2
	for e2, q := range c.Sets2 {
		qs := len(q)
		idx.Overlaps(q, func(e1 int32, overlap int) {
			if sim := m.Sim(overlap, qs, idx.Size(e1)); sim > 0 {
				all = append(all, Neighbor2{Pair: entity.Pair{Left: e1, Right: int32(e2)}, Sim: sim})
			}
		})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Sim != all[j].Sim {
			return all[i].Sim > all[j].Sim
		}
		if all[i].Pair.Left != all[j].Pair.Left {
			return all[i].Pair.Left < all[j].Pair.Left
		}
		return all[i].Pair.Right < all[j].Pair.Right
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Neighbor2 is a scored candidate pair of the global top-k join.
type Neighbor2 struct {
	Pair entity.Pair
	Sim  float64
}
