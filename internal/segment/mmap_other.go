//go:build !unix

package segment

import (
	"io"
	"os"
)

// mmapFile on platforms without syscall.Mmap falls back to a resident
// copy: the stream is slurped once and the handle closed, trading heap
// for portability. The codec path above it is identical.
func mmapFile(f *os.File) ([]byte, func() error, error) {
	data, err := io.ReadAll(f)
	cerr := f.Close()
	if err != nil {
		return nil, nil, err
	}
	if cerr != nil {
		return nil, nil, cerr
	}
	return data, nil, nil
}
