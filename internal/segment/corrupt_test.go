package segment

import (
	"bytes"
	"testing"
)

// corruptSegBytes is the canonical segment the corruption tests mutate:
// sparse (the format's richest layout — postings, sizes, token table)
// plus a dense sibling for the vector section.
func corruptCorpora(t testing.TB) map[string][]byte {
	return map[string][]byte{
		"sparse": segBytes(t, KindSparse, 0, sparseEntries(1, 2, 5, 9)),
		"dense":  segBytes(t, KindDense, 8, denseEntries(8, 1, 2, 5, 9)),
	}
}

// TestSegmentLoadRejectsEveryTruncation feeds Load every strict prefix
// of a valid segment: each must fail cleanly — no panic, no reader —
// and the full bytes must still load.
func TestSegmentLoadRejectsEveryTruncation(t *testing.T) {
	for name, full := range corruptCorpora(t) {
		t.Run(name, func(t *testing.T) {
			for cut := 0; cut < len(full); cut++ {
				if g, err := Load(full[:cut], "trunc", nil); err == nil {
					t.Fatalf("prefix of %d/%d bytes loaded (%d entries)", cut, len(full), g.Count())
				}
			}
			g, err := Load(full, "full", nil)
			if err != nil {
				t.Fatalf("full segment failed: %v", err)
			}
			g.Close()
		})
	}
}

// TestSegmentLoadRejectsEveryBitFlip corrupts each byte in turn: the
// CRC trailer (checked before any structure is trusted) must reject
// every one.
func TestSegmentLoadRejectsEveryBitFlip(t *testing.T) {
	for name, full := range corruptCorpora(t) {
		t.Run(name, func(t *testing.T) {
			for off := 0; off < len(full); off++ {
				mut := append([]byte(nil), full...)
				mut[off] ^= 0xFF
				if g, err := Load(mut, "flip", nil); err == nil {
					t.Fatalf("byte %d/%d flipped, segment still loaded (%d entries)", off, len(full), g.Count())
				}
			}
		})
	}
}

func manifestBytes(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	m := manifest{
		Gen:       3,
		Watermark: 77,
		Meta:      []byte("pinned"),
		Segs: []manEntry{
			{Name: "seg-0000000000000000.seg", Kind: KindSparse, Count: 4, MinID: 1, MaxID: 9, Bytes: 400},
			{Name: "seg-0000000000000002.seg", Kind: KindSparse, Count: 1, MinID: 20, MaxID: 20, Bytes: 90},
		},
		Tombs: []int64{5},
	}
	if err := writeManifest(&buf, m); err != nil {
		t.Fatalf("writeManifest: %v", err)
	}
	return buf.Bytes()
}

func TestManifestLoadRejectsEveryTruncation(t *testing.T) {
	full := manifestBytes(t)
	for cut := 0; cut < len(full); cut++ {
		if m, err := loadManifest(full[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded (gen %d)", cut, len(full), m.Gen)
		}
	}
	if _, err := loadManifest(full); err != nil {
		t.Fatalf("full manifest failed: %v", err)
	}
}

func TestManifestLoadRejectsEveryBitFlip(t *testing.T) {
	full := manifestBytes(t)
	for off := 0; off < len(full); off++ {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0xFF
		if m, err := loadManifest(mut); err == nil {
			t.Fatalf("byte %d/%d flipped, manifest still loaded (gen %d)", off, len(full), m.Gen)
		}
	}
}

// FuzzLoadSegment throws arbitrary bytes at Load: it must never panic,
// and anything it accepts must be internally consistent enough to
// enumerate and query.
func FuzzLoadSegment(f *testing.F) {
	for _, full := range corruptCorpora(f) {
		f.Add(full)
		f.Add(full[:len(full)/2])
		tail := append([]byte(nil), full...)
		tail[len(tail)-2] ^= 0x01
		f.Add(tail)
	}
	f.Add([]byte(segMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Load(append([]byte(nil), data...), "fuzz", nil)
		if err != nil {
			return
		}
		defer g.Close()
		if g.Count() < 1 {
			t.Fatalf("accepted segment with count %d", g.Count())
		}
		// Everything an accepted segment claims to hold must be walkable
		// without panics: entries, membership, and both query paths.
		ents := g.entries()
		if len(ents) != g.Count() {
			t.Fatalf("entries() = %d, count = %d", len(ents), g.Count())
		}
		for _, e := range ents {
			if !g.has(e.ID) {
				t.Fatalf("stored id %d not found", e.ID)
			}
		}
		never := func(int64) bool { return false }
		if g.kind == KindSparse {
			_ = g.rangeQuery([]string{"probe"}, 0, 0.1, never)
			_ = g.knnQuery([]string{"probe"}, 0, 2, never)
		} else {
			q := make([]float32, g.dim)
			_ = g.denseSearch(q, 2, 0, never)
		}
	})
}

// FuzzLoadManifest: same contract for the manifest codec.
func FuzzLoadManifest(f *testing.F) {
	full := manifestBytes(f)
	f.Add(full)
	f.Add(full[:len(full)/2])
	tail := append([]byte(nil), full...)
	tail[len(tail)-3] ^= 0x10
	f.Add(tail)
	f.Add([]byte(manMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := loadManifest(append([]byte(nil), data...))
		if err != nil {
			return
		}
		// Accepted manifests must satisfy the invariants Open relies on.
		if m.Watermark < 0 {
			t.Fatalf("accepted negative watermark %d", m.Watermark)
		}
		seen := map[string]bool{}
		for _, e := range m.Segs {
			if e.Name == "" || seen[e.Name] {
				t.Fatalf("accepted empty or duplicate segment name %q", e.Name)
			}
			seen[e.Name] = true
			if e.Count < 1 || e.MinID > e.MaxID || e.Bytes < 1 {
				t.Fatalf("accepted malformed entry %+v", e)
			}
		}
		for i := 1; i < len(m.Tombs); i++ {
			if m.Tombs[i] <= m.Tombs[i-1] {
				t.Fatalf("accepted unsorted tombstones %v", m.Tombs)
			}
		}
	})
}
