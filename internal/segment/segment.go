package segment

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"erfilter/internal/entity"
	"erfilter/internal/knn"
	"erfilter/internal/sparse"
	"erfilter/internal/vector"
)

// segMagic identifies a segment file and its format version.
const segMagic = "ERSEG\x01\n\x00"

// Kind selects what a segment indexes: token sets for the sparse
// (EpsJoin/KNNJoin) methods or dense vectors for FlatKNN.
type Kind uint8

const (
	// KindSparse segments store per-entity token sets as postings.
	KindSparse Kind = iota
	// KindDense segments store one dim-width vector per entity.
	KindDense
)

// Entry is one entity bound for a segment: its id, raw attributes
// (retained for Get and snapshot capture), and the derived index
// payload — unique token strings for sparse kinds, an embedding for
// dense kinds. Entries are self-contained: segments persist token
// strings, not vocabulary codes, so no global dictionary outlives the
// memtable.
type Entry struct {
	ID     int64
	Attrs  []entity.Attribute
	Tokens []string
	Vec    vector.Vec
}

// Hit is one scatter-gather candidate from the tier. For sparse
// queries Score is the similarity (bigger is better); for dense
// queries it is the metric's raw smaller-is-better score, exactly as
// knn indexes report internally.
type Hit struct {
	ID    int64
	Score float64
}

// writeSegment encodes the entries, which must be sorted by strictly
// ascending id, in the ERSEG format:
//
//	magic | kind u8 | count u32 | dim u32 | ntoks u32 | nposts u64
//	ids:      count x u64        (strictly ascending)
//	sizes:    count x u32        (sparse: token-set sizes)
//	tokens:   ntoks x {str, u32} (sorted unique token, posting count)
//	postings: nposts x u32       (slots, grouped by token, ascending)
//	vectors:  count x dim x f32  (dense)
//	attroffs: count x u64        (byte offset of entity i's attr block)
//	attrs:    count x {u32, n x {str,str}}
//	footer:   8 x u64 section offsets + attrs end
//	trailer:  u32 CRC-32C of everything above
//
// Postings for each token are emitted in ascending slot order with no
// duplicates, which Load re-verifies; the per-token posting starts are
// implicit (cumulative), so the postings section is contiguous by
// construction.
func writeSegment(w io.Writer, kind Kind, dim int, ents []Entry) error {
	if len(ents) == 0 {
		return fmt.Errorf("segment: refusing to write empty segment")
	}
	if len(ents) >= maxSegCount {
		return fmt.Errorf("segment: %d entries exceed the per-segment limit", len(ents))
	}
	for i, e := range ents {
		if i > 0 && e.ID <= ents[i-1].ID {
			return fmt.Errorf("segment: entries not strictly ascending at index %d (id %d)", i, e.ID)
		}
		switch kind {
		case KindSparse:
			if e.Vec != nil {
				return fmt.Errorf("segment: sparse entry %d carries a vector", e.ID)
			}
		case KindDense:
			if len(e.Vec) != dim {
				return fmt.Errorf("segment: entry %d vector dim %d, segment dim %d", e.ID, len(e.Vec), dim)
			}
		}
	}

	var toks []string
	posts := map[string][]uint32{}
	var nposts uint64
	if kind == KindSparse {
		for slot, e := range ents {
			for _, tok := range e.Tokens {
				l := posts[tok]
				if len(l) > 0 && l[len(l)-1] == uint32(slot) {
					return fmt.Errorf("segment: entry %d repeats token %q", e.ID, tok)
				}
				posts[tok] = append(l, uint32(slot))
				nposts++
			}
		}
		toks = make([]string, 0, len(posts))
		for tok := range posts {
			toks = append(toks, tok)
		}
		sort.Strings(toks)
	}

	b := newBinWriter(w)
	b.bytes([]byte(segMagic))
	b.u8(uint8(kind))
	b.u32(uint32(len(ents)))
	if kind == KindDense {
		b.u32(uint32(dim))
	} else {
		b.u32(0)
	}
	b.u32(uint32(len(toks)))
	b.u64(nposts)

	idsOff := b.off
	for _, e := range ents {
		b.u64(uint64(e.ID))
	}
	sizesOff := b.off
	if kind == KindSparse {
		for _, e := range ents {
			b.u32(uint32(len(e.Tokens)))
		}
	}
	toksOff := b.off
	for _, tok := range toks {
		b.str(tok)
		b.u32(uint32(len(posts[tok])))
	}
	postsOff := b.off
	for _, tok := range toks {
		for _, slot := range posts[tok] {
			b.u32(slot)
		}
	}
	vecsOff := b.off
	if kind == KindDense {
		for _, e := range ents {
			for _, x := range e.Vec {
				b.f32(x)
			}
		}
	}
	attrOffsOff := b.off
	off := uint64(0)
	for _, e := range ents {
		b.u64(off)
		off += 4
		for _, a := range e.Attrs {
			off += 8 + uint64(len(a.Name)) + uint64(len(a.Value))
		}
	}
	attrsOff := b.off
	for _, e := range ents {
		b.u32(uint32(len(e.Attrs)))
		for _, a := range e.Attrs {
			b.str(a.Name)
			b.str(a.Value)
		}
	}
	// Footer: absolute section offsets so a reader can locate sections
	// without replaying the header arithmetic; Load cross-checks each
	// against the offsets it observed while walking.
	for _, o := range []int64{idsOff, sizesOff, toksOff, postsOff, vecsOff, attrOffsOff, attrsOff, b.off} {
		b.u64(uint64(o))
	}
	return b.trailer()
}

// Reader is one loaded, immutable segment. The raw stream stays mapped
// (or resident, for in-memory filesystems) for the reader's lifetime;
// only the token table lives on the Go heap, so a reader's footprint is
// O(distinct tokens), not O(entities). All methods are safe for
// concurrent use.
type Reader struct {
	name  string
	kind  Kind
	count int
	dim   int
	data  []byte
	unmap func() error

	minID, maxID int64

	idsOff, sizesOff, postsOff, vecsOff, attrOffsOff, attrsOff int

	toks    []string
	postOff []int64 // absolute byte offset of each token's postings
	postLen []int32

	scratch sync.Pool
}

// Load parses and fully validates a segment stream before any use, in
// the ERSNAP style: CRC first, then magic, then every structural
// invariant — ascending ids, sorted unique tokens, contiguous postings
// whose per-slot totals equal the recorded set sizes, bounded strings,
// attribute blocks at exactly their recorded offsets, and a footer that
// matches the walked section layout. A segment that loads cannot lie.
func Load(data []byte, name string, unmap func() error) (*Reader, error) {
	body, err := verifyStream(data, "segment")
	if err != nil {
		return nil, err
	}
	c := &cursor{data: body}
	if string(c.take(len(segMagic))) != segMagic {
		return nil, fmt.Errorf("segment: bad magic in %s", name)
	}
	kind := Kind(c.u8())
	count := int(c.u32())
	dim := int(c.u32())
	ntoks := int(c.u32())
	nposts := c.u64()
	if c.err != nil {
		return nil, c.err
	}
	if kind != KindSparse && kind != KindDense {
		return nil, fmt.Errorf("segment: unknown kind %d", kind)
	}
	if count < 1 || count >= maxSegCount {
		return nil, fmt.Errorf("segment: invalid entity count %d", count)
	}
	switch kind {
	case KindSparse:
		if dim != 0 {
			return nil, fmt.Errorf("segment: sparse segment declares dim %d", dim)
		}
	case KindDense:
		if dim < 1 || dim > 1<<16 {
			return nil, fmt.Errorf("segment: invalid dim %d", dim)
		}
		if ntoks != 0 || nposts != 0 {
			return nil, fmt.Errorf("segment: dense segment declares tokens")
		}
	}
	if uint64(ntoks) > nposts || nposts > uint64(count)*uint64(maxSegAttr) {
		return nil, fmt.Errorf("segment: inconsistent token counts (%d tokens, %d postings)", ntoks, nposts)
	}

	g := &Reader{name: name, kind: kind, count: count, dim: dim, data: data, unmap: unmap}
	g.scratch.New = func() interface{} { return &scratch{} }

	g.idsOff = c.off
	prev := int64(math.MinInt64)
	for i := 0; i < count; i++ {
		id := int64(c.u64())
		if c.err != nil {
			return nil, c.err
		}
		if id <= prev {
			return nil, fmt.Errorf("segment: ids not strictly ascending at slot %d", i)
		}
		prev = id
	}
	g.minID = int64(binary.LittleEndian.Uint64(body[g.idsOff:]))
	g.maxID = prev

	g.sizesOff = c.off
	var sizeSum uint64
	if kind == KindSparse {
		for i := 0; i < count; i++ {
			n := c.u32()
			if uint32(maxSegAttr) < n {
				return nil, fmt.Errorf("segment: token-set size %d exceeds limit", n)
			}
			sizeSum += uint64(n)
		}
		if c.err == nil && sizeSum != nposts {
			return nil, fmt.Errorf("segment: set sizes sum to %d, postings claim %d", sizeSum, nposts)
		}
	}

	toksOff := c.off
	if kind == KindSparse {
		g.toks = make([]string, ntoks)
		g.postLen = make([]int32, ntoks)
		var total uint64
		for i := 0; i < ntoks; i++ {
			g.toks[i] = c.str()
			n := c.u32()
			if c.err != nil {
				return nil, c.err
			}
			if i > 0 && g.toks[i] <= g.toks[i-1] {
				return nil, fmt.Errorf("segment: tokens not sorted unique at %d", i)
			}
			if n < 1 || uint64(n) > nposts {
				return nil, fmt.Errorf("segment: token %q has invalid posting count %d", g.toks[i], n)
			}
			g.postLen[i] = int32(n)
			total += uint64(n)
		}
		if total != nposts {
			return nil, fmt.Errorf("segment: posting counts sum to %d, header claims %d", total, nposts)
		}
	}

	g.postsOff = c.off
	if kind == KindSparse {
		// Per-token postings must be strictly ascending slots, and the
		// number of postings naming each slot must equal its recorded
		// set size — the two sides of the inverted index must agree.
		perSlot := make([]uint32, count)
		g.postOff = make([]int64, ntoks)
		for i := 0; i < ntoks; i++ {
			g.postOff[i] = int64(c.off)
			last := int64(-1)
			for j := int32(0); j < g.postLen[i]; j++ {
				slot := c.u32()
				if c.err != nil {
					return nil, c.err
				}
				if int64(slot) <= last || int(slot) >= count {
					return nil, fmt.Errorf("segment: bad posting slot %d for token %q", slot, g.toks[i])
				}
				last = int64(slot)
				perSlot[slot]++
			}
		}
		for slot := 0; slot < count; slot++ {
			if uint64(perSlot[slot]) != uint64(binary.LittleEndian.Uint32(body[g.sizesOff+4*slot:])) {
				return nil, fmt.Errorf("segment: slot %d posting total disagrees with its set size", slot)
			}
		}
	}

	g.vecsOff = c.off
	if kind == KindDense {
		if c.take(count*dim*4) == nil {
			return nil, c.err
		}
	}

	g.attrOffsOff = c.off
	if c.take(count*8) == nil {
		return nil, c.err
	}
	g.attrsOff = c.off
	for i := 0; i < count; i++ {
		want := binary.LittleEndian.Uint64(body[g.attrOffsOff+8*i:])
		if uint64(c.off-g.attrsOff) != want {
			return nil, fmt.Errorf("segment: attr block %d at offset %d, recorded %d", i, c.off-g.attrsOff, want)
		}
		nattrs := c.u32()
		if nattrs > maxSegAttr {
			return nil, fmt.Errorf("segment: entity %d declares %d attributes", i, nattrs)
		}
		for j := uint32(0); j < nattrs; j++ {
			c.str()
			c.str()
		}
		if c.err != nil {
			return nil, c.err
		}
	}

	attrsEnd := c.off
	for i, want := range []int{g.idsOff, g.sizesOff, toksOff, g.postsOff, g.vecsOff, g.attrOffsOff, g.attrsOff, attrsEnd} {
		if got := int64(c.u64()); c.err == nil && got != int64(want) {
			return nil, fmt.Errorf("segment: footer offset %d is %d, observed %d", i, got, want)
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(body) {
		return nil, fmt.Errorf("segment: %d trailing bytes after footer", len(body)-c.off)
	}
	return g, nil
}

// Close releases the underlying mapping, if any. Queries against a
// closed reader are undefined; the tier only closes readers once no
// snapshot can still reach them.
func (g *Reader) Close() error {
	if g.unmap != nil {
		u := g.unmap
		g.unmap = nil
		return u()
	}
	return nil
}

// Count returns the number of entities stored (live or tombstoned).
func (g *Reader) Count() int { return g.count }

// Bytes returns the on-disk size of the segment stream.
func (g *Reader) Bytes() int64 { return int64(len(g.data)) }

// Name returns the segment's file name within the tier directory.
func (g *Reader) Name() string { return g.name }

func (g *Reader) id(slot int) int64 {
	return int64(binary.LittleEndian.Uint64(g.data[g.idsOff+8*slot:]))
}

func (g *Reader) size(slot int) int {
	return int(binary.LittleEndian.Uint32(g.data[g.sizesOff+4*slot:]))
}

// slotOf binary-searches the ids section, returning -1 when absent.
func (g *Reader) slotOf(id int64) int {
	if id < g.minID || id > g.maxID {
		return -1
	}
	lo, hi := 0, g.count
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.id(mid) < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < g.count && g.id(lo) == id {
		return lo
	}
	return -1
}

// has reports whether the segment stores the id (ignoring tombstones,
// which the tier tracks).
func (g *Reader) has(id int64) bool { return g.slotOf(id) >= 0 }

// attrs decodes the attribute block of a slot.
func (g *Reader) attrs(slot int) []entity.Attribute {
	off := g.attrsOff + int(binary.LittleEndian.Uint64(g.data[g.attrOffsOff+8*slot:]))
	c := &cursor{data: g.data, off: off}
	n := c.u32()
	out := make([]entity.Attribute, n)
	for i := range out {
		out[i] = entity.Attribute{Name: c.str(), Value: c.str()}
	}
	return out
}

// vec decodes the vector of a slot into dst, which must be dim wide.
func (g *Reader) vec(slot int, dst vector.Vec) {
	base := g.vecsOff + slot*g.dim*4
	for j := 0; j < g.dim; j++ {
		dst[j] = math.Float32frombits(binary.LittleEndian.Uint32(g.data[base+4*j:]))
	}
}

// tokens reconstructs the token list of every slot by inverting the
// postings — used by merge, which must rewrite entries verbatim.
// Within a slot, tokens come out in sorted order; writeSegment does
// not care about per-entry token order, only uniqueness.
func (g *Reader) tokens() [][]string {
	out := make([][]string, g.count)
	for i := 0; i < g.count; i++ {
		if n := g.size(i); n > 0 {
			out[i] = make([]string, 0, n)
		}
	}
	for t, tok := range g.toks {
		base := g.postOff[t]
		for j := int32(0); j < g.postLen[t]; j++ {
			slot := binary.LittleEndian.Uint32(g.data[base+int64(4*j):])
			out[slot] = append(out[slot], tok)
		}
	}
	return out
}

// entries materializes every stored entity (live or not) as flushable
// entries — the merge path's input.
func (g *Reader) entries() []Entry {
	out := make([]Entry, g.count)
	var toks [][]string
	if g.kind == KindSparse {
		toks = g.tokens()
	}
	for i := range out {
		out[i] = Entry{ID: g.id(i), Attrs: g.attrs(i)}
		if g.kind == KindSparse {
			out[i].Tokens = toks[i]
		} else {
			v := make(vector.Vec, g.dim)
			g.vec(i, v)
			out[i].Vec = v
		}
	}
	return out
}

// scratch is the segment-local analog of sparse.Scratch: stamped
// overlap counters reused across queries without clearing.
type scratch struct {
	counts []int32
	stamp  []int64
	round  int64
	found  []int32
}

func (sc *scratch) grow(n int) {
	if len(sc.counts) < n {
		sc.counts = make([]int32, n)
		sc.stamp = make([]int64, n)
	}
	sc.found = sc.found[:0]
	sc.round++
}

// overlaps computes |query ∩ stored| per candidate slot by walking the
// query tokens' postings, mirroring sparse.IncIndex exactly: unknown
// tokens are skipped, counts accumulate under a per-round stamp, and fn
// sees each touched slot once with its integer overlap.
func (g *Reader) overlaps(query []string, sc *scratch, fn func(slot, overlap int)) {
	sc.grow(g.count)
	for _, tok := range query {
		t := sort.SearchStrings(g.toks, tok)
		if t == len(g.toks) || g.toks[t] != tok {
			continue
		}
		base := g.postOff[t]
		for j := int32(0); j < g.postLen[t]; j++ {
			slot := int32(binary.LittleEndian.Uint32(g.data[base+int64(4*j):]))
			if sc.stamp[slot] != sc.round {
				sc.stamp[slot] = sc.round
				sc.counts[slot] = 0
				sc.found = append(sc.found, slot)
			}
			sc.counts[slot]++
		}
	}
	for _, slot := range sc.found {
		fn(int(slot), int(sc.counts[slot]))
	}
}

// rangeQuery returns every live stored set with sim >= eps against the
// query token set, sorted (sim desc, id asc) — the same answer
// sparse.IncSnapshot.RangeQuery gives over the same entities, because
// both compute the identical integer overlap and the identical
// Measure.Sim call.
func (g *Reader) rangeQuery(query []string, m sparse.Measure, eps float64, dead func(int64) bool) []Hit {
	sc := g.scratch.Get().(*scratch)
	defer g.scratch.Put(sc)
	qs := len(query)
	var out []Hit
	g.overlaps(query, sc, func(slot, overlap int) {
		id := g.id(slot)
		if dead(id) {
			return
		}
		if sim := m.Sim(overlap, qs, g.size(slot)); sim >= eps {
			out = append(out, Hit{ID: id, Score: sim})
		}
	})
	sortHitsDesc(out)
	return out
}

// knnQuery returns live candidates with positive similarity, sorted
// (sim desc, id asc) and cut to k distinct similarity values with full
// tie groups — sparse.IncSnapshot.KNNQuery's exact contract.
func (g *Reader) knnQuery(query []string, m sparse.Measure, k int, dead func(int64) bool) []Hit {
	if k <= 0 {
		return nil
	}
	sc := g.scratch.Get().(*scratch)
	defer g.scratch.Put(sc)
	qs := len(query)
	var cands []Hit
	g.overlaps(query, sc, func(slot, overlap int) {
		id := g.id(slot)
		if dead(id) {
			return
		}
		if sim := m.Sim(overlap, qs, g.size(slot)); sim > 0 {
			cands = append(cands, Hit{ID: id, Score: sim})
		}
	})
	sortHitsDesc(cands)
	return cutDistinct(cands, k)
}

// denseSearch scans every live vector with the metric's raw score and
// keeps the k lexicographically smallest (score, id) hits — the same
// bounded max-heap selection knn.FlatSnapshot.Search runs, over bits
// decoded exactly as they were written.
func (g *Reader) denseSearch(q vector.Vec, k int, metric knn.Metric, dead func(int64) bool) []Hit {
	if k <= 0 {
		return nil
	}
	h := hitTopK{k: k}
	vbuf := make(vector.Vec, g.dim)
	for slot := 0; slot < g.count; slot++ {
		id := g.id(slot)
		if dead(id) {
			continue
		}
		g.vec(slot, vbuf)
		h.offer(id, metric.Score(q, vbuf))
	}
	return h.sorted()
}

// sortHitsDesc orders hits by (score desc, id asc) — the canonical
// sparse candidate order everywhere in the resolver.
func sortHitsDesc(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
}

// sortHitsAsc orders hits by (score asc, id asc) — the canonical dense
// result order.
func sortHitsAsc(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score < hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
}

// cutDistinct keeps the prefix spanning at most k distinct score
// values of a (score desc, id asc)-sorted slice, ties included —
// KNNJoin's per-part cut.
func cutDistinct(hits []Hit, k int) []Hit {
	distinct := 0
	last := math.Inf(1)
	for i, h := range hits {
		if h.Score != last {
			if distinct == k {
				return hits[:i]
			}
			distinct++
			last = h.Score
		}
	}
	return hits
}

// hitTopK is knn's incTopK over tier hits: a bounded max-heap keeping
// the k smallest (score, id) pairs, with the identical tie-breaking.
type hitTopK struct {
	k     int
	items []Hit
}

func (h *hitTopK) offer(id int64, score float64) {
	if len(h.items) < h.k {
		h.items = append(h.items, Hit{ID: id, Score: score})
		h.up(len(h.items) - 1)
		return
	}
	worst := h.items[0]
	if score < worst.Score || (score == worst.Score && id < worst.ID) {
		h.items[0] = Hit{ID: id, Score: score}
		h.down(0)
	}
}

func (h *hitTopK) worse(i, j int) bool {
	if h.items[i].Score != h.items[j].Score {
		return h.items[i].Score > h.items[j].Score
	}
	return h.items[i].ID > h.items[j].ID
}

func (h *hitTopK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.worse(i, p) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *hitTopK) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && h.worse(l, worst) {
			worst = l
		}
		if r < n && h.worse(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}

func (h *hitTopK) sorted() []Hit {
	out := append([]Hit(nil), h.items...)
	sortHitsAsc(out)
	return out
}
