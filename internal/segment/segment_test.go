package segment

import (
	"bytes"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
	"erfilter/internal/knn"
	"erfilter/internal/sparse"
	"erfilter/internal/vector"
)

// sparseEntry builds a deterministic sparse entry: tokens derived from
// the id so every entity overlaps its neighbours a little.
func sparseEntry(id int64) Entry {
	toks := []string{
		fmt.Sprintf("tok%d", id),
		fmt.Sprintf("tok%d", id+1),
		fmt.Sprintf("grp%d", id%3),
	}
	return Entry{
		ID:     id,
		Attrs:  []entity.Attribute{{Name: "name", Value: fmt.Sprintf("entity %d", id)}},
		Tokens: toks,
	}
}

func sparseEntries(ids ...int64) []Entry {
	ents := make([]Entry, len(ids))
	for i, id := range ids {
		ents[i] = sparseEntry(id)
	}
	return ents
}

// denseEntry builds a deterministic unit vector from the id.
func denseEntry(id int64, dim int) Entry {
	v := make(vector.Vec, dim)
	for i := range v {
		v[i] = float32(math.Sin(float64(id*31 + int64(i))))
	}
	return Entry{
		ID:    id,
		Attrs: []entity.Attribute{{Name: "name", Value: fmt.Sprintf("entity %d", id)}},
		Vec:   vector.Normalize(v),
	}
}

func denseEntries(dim int, ids ...int64) []Entry {
	ents := make([]Entry, len(ids))
	for i, id := range ids {
		ents[i] = denseEntry(id, dim)
	}
	return ents
}

func segBytes(t testing.TB, kind Kind, dim int, ents []Entry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeSegment(&buf, kind, dim, ents); err != nil {
		t.Fatalf("writeSegment: %v", err)
	}
	return buf.Bytes()
}

func TestSegmentRoundTripSparse(t *testing.T) {
	ents := sparseEntries(1, 2, 5, 9)
	g, err := Load(segBytes(t, KindSparse, 0, ents), "seg-test", nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer g.Close()
	if g.Count() != len(ents) {
		t.Fatalf("count = %d, want %d", g.Count(), len(ents))
	}
	got := g.entries()
	if len(got) != len(ents) {
		t.Fatalf("entries() returned %d, want %d", len(got), len(ents))
	}
	for i, e := range got {
		if e.ID != ents[i].ID {
			t.Fatalf("entry %d id = %d, want %d", i, e.ID, ents[i].ID)
		}
		if !reflect.DeepEqual(e.Attrs, ents[i].Attrs) {
			t.Fatalf("entry %d attrs = %v, want %v", i, e.Attrs, ents[i].Attrs)
		}
		want := append([]string(nil), ents[i].Tokens...)
		gotToks := append([]string(nil), e.Tokens...)
		sort.Strings(want)
		sort.Strings(gotToks)
		if !reflect.DeepEqual(gotToks, want) {
			t.Fatalf("entry %d tokens = %v, want %v", i, gotToks, want)
		}
	}
	if !g.has(5) || g.has(4) {
		t.Fatalf("membership: has(5)=%v has(4)=%v", g.has(5), g.has(4))
	}
}

func TestSegmentRoundTripDense(t *testing.T) {
	const dim = 8
	ents := denseEntries(dim, 3, 4, 10)
	g, err := Load(segBytes(t, KindDense, dim, ents), "seg-test", nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer g.Close()
	v := make(vector.Vec, dim)
	for i, e := range ents {
		g.vec(i, v)
		if !reflect.DeepEqual(v, e.Vec) {
			t.Fatalf("vec(%d) = %v, want %v", i, v, e.Vec)
		}
	}
}

// TestSegmentQueriesMatchBruteForce checks the three query paths of a
// single reader against trivially-correct scans.
func TestSegmentQueriesMatchBruteForce(t *testing.T) {
	ents := sparseEntries(1, 2, 3, 4, 5, 6, 7)
	g, err := Load(segBytes(t, KindSparse, 0, ents), "seg-test", nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer g.Close()

	query := []string{"tok3", "tok4", "grp0"}
	m := sparse.Jaccard
	never := func(int64) bool { return false }

	sim := func(e Entry) float64 {
		set := map[string]bool{}
		for _, tok := range e.Tokens {
			set[tok] = true
		}
		ov := 0
		for _, tok := range query {
			if set[tok] {
				ov++
			}
		}
		return m.Sim(ov, len(query), len(e.Tokens))
	}

	t.Run("range", func(t *testing.T) {
		const eps = 0.2
		var want []Hit
		for _, e := range ents {
			if s := sim(e); s >= eps {
				want = append(want, Hit{ID: e.ID, Score: s})
			}
		}
		sortHitsDesc(want)
		got := g.rangeQuery(query, m, eps, never)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rangeQuery = %v, want %v", got, want)
		}
	})

	t.Run("knn", func(t *testing.T) {
		var all []Hit
		for _, e := range ents {
			if s := sim(e); s > 0 {
				all = append(all, Hit{ID: e.ID, Score: s})
			}
		}
		sortHitsDesc(all)
		want := cutDistinct(all, 2)
		got := g.knnQuery(query, m, 2, never)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("knnQuery = %v, want %v", got, want)
		}
	})

	t.Run("dead-mask", func(t *testing.T) {
		dead := func(id int64) bool { return id == 3 }
		for _, h := range g.rangeQuery(query, m, 0.0, dead) {
			if h.ID == 3 {
				t.Fatalf("tombstoned id 3 surfaced: %v", h)
			}
		}
	})
}

func TestSegmentDenseSearchMatchesBruteForce(t *testing.T) {
	const dim = 8
	ents := denseEntries(dim, 1, 2, 3, 4, 5, 6)
	g, err := Load(segBytes(t, KindDense, dim, ents), "seg-test", nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer g.Close()
	q := denseEntry(99, dim).Vec
	metric := knn.L2Squared

	var all []Hit
	for _, e := range ents {
		all = append(all, Hit{ID: e.ID, Score: metric.Score(q, e.Vec)})
	}
	sortHitsAsc(all)
	want := all[:3]
	got := g.denseSearch(q, 3, metric, func(int64) bool { return false })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("denseSearch = %v, want %v", got, want)
	}
}

func TestWriteSegmentRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	cases := map[string]func() error{
		"empty": func() error { return writeSegment(&buf, KindSparse, 0, nil) },
		"unsorted": func() error {
			return writeSegment(&buf, KindSparse, 0, sparseEntries(5, 3))
		},
		"duplicate-id": func() error {
			return writeSegment(&buf, KindSparse, 0, sparseEntries(5, 5))
		},
		"duplicate-token": func() error {
			e := sparseEntry(1)
			e.Tokens = []string{"a", "a"}
			return writeSegment(&buf, KindSparse, 0, []Entry{e})
		},
		"sparse-with-vector": func() error {
			e := sparseEntry(1)
			e.Vec = make(vector.Vec, 4)
			return writeSegment(&buf, KindSparse, 0, []Entry{e})
		},
		"dense-wrong-dim": func() error {
			return writeSegment(&buf, KindDense, 8, denseEntries(4, 1))
		},
	}
	for name, fn := range cases {
		buf.Reset()
		if err := fn(); err == nil {
			t.Errorf("%s: writeSegment accepted bad input", name)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := manifest{
		Gen:       7,
		Watermark: 1234,
		Meta:      []byte("opaque config"),
		Segs: []manEntry{
			{Name: "seg-0000000000000001.seg", Kind: KindSparse, Count: 3, MinID: 1, MaxID: 9, Bytes: 512},
			{Name: "seg-0000000000000004.seg", Kind: KindSparse, Count: 2, MinID: 12, MaxID: 15, Bytes: 300},
		},
		Tombs: []int64{2, 13},
	}
	var buf bytes.Buffer
	if err := writeManifest(&buf, m); err != nil {
		t.Fatalf("writeManifest: %v", err)
	}
	got, err := loadManifest(buf.Bytes())
	if err != nil {
		t.Fatalf("loadManifest: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip = %+v, want %+v", got, m)
	}
}

// sparseOpts is the default tier config of the tier lifecycle tests:
// in-memory fault fs, inline merges, fan-in 2.
func sparseOpts(fsys faultfs.FS, dir string) Options {
	return Options{
		FS:         fsys,
		Dir:        dir,
		Kind:       KindSparse,
		Measure:    sparse.Jaccard,
		MergeFanin: 2,
		Meta:       []byte("test meta"),
		SyncMerge:  true,
	}
}

func TestTierFlushDeleteMergeReopen(t *testing.T) {
	fsys := faultfs.NewMem()
	dir := "tier"
	tr, err := Open(sparseOpts(fsys, dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	// Three small flushes: fan-in 2 means the third flush triggers a
	// merge chain that folds everything into one segment.
	if err := tr.Flush(sparseEntries(1, 2), 3); err != nil {
		t.Fatalf("flush 1: %v", err)
	}
	if err := tr.Flush(sparseEntries(3, 4), 5); err != nil {
		t.Fatalf("flush 2: %v", err)
	}
	if !tr.Delete(2) {
		t.Fatal("Delete(2) = false")
	}
	if tr.Delete(2) || tr.Delete(99) {
		t.Fatal("re-delete or missing-id delete returned true")
	}
	if err := tr.Flush(sparseEntries(5, 6), 7); err != nil {
		t.Fatalf("flush 3: %v", err)
	}

	v := tr.View()
	if v.Live() != 5 {
		t.Fatalf("live = %d, want 5", v.Live())
	}
	if v.Segments() > 2 {
		t.Fatalf("segments after merge = %d, want <= 2", v.Segments())
	}
	// The merge that folded the segment holding id 2 garbage-collected
	// its tombstone.
	if v.Has(2) {
		t.Fatal("deleted id 2 still visible")
	}
	for _, id := range []int64{1, 3, 4, 5, 6} {
		if !v.Has(id) {
			t.Fatalf("id %d missing after merge", id)
		}
		attrs, ok := v.Get(id)
		if !ok || attrs[0].Value != fmt.Sprintf("entity %d", id) {
			t.Fatalf("Get(%d) = %v, %v", id, attrs, ok)
		}
	}
	if got := tr.Watermark(); got != 7 {
		t.Fatalf("watermark = %d, want 7", got)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: same live set, same watermark, meta pinned from the first
	// manifest (the caller's new meta must lose).
	opts := sparseOpts(fsys, dir)
	opts.Meta = []byte("different meta")
	tr2, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer tr2.Close()
	if got := string(tr2.Meta()); got != "test meta" {
		t.Fatalf("reopened meta = %q, want pinned original", got)
	}
	if got := tr2.Watermark(); got != 7 {
		t.Fatalf("reopened watermark = %d, want 7", got)
	}
	v2 := tr2.View()
	if v2.Live() != 5 || v2.Has(2) {
		t.Fatalf("reopened live = %d, Has(2) = %v", v2.Live(), v2.Has(2))
	}
}

// TestTierTombstonePersistsAcrossReopen: a tombstone that has reached
// the manifest (via a later flush) must mask its entity after reopen
// even when no merge collected it yet.
func TestTierTombstonePersistsAcrossReopen(t *testing.T) {
	fsys := faultfs.NewMem()
	opts := sparseOpts(fsys, "tier")
	opts.MergeFanin = 100 // never merge
	tr, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := tr.Flush(sparseEntries(1, 2, 3), 4); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if !tr.Delete(2) {
		t.Fatal("Delete(2) = false")
	}
	// Manifest-only flush commits the tombstone.
	if err := tr.Flush(nil, 4); err != nil {
		t.Fatalf("manifest flush: %v", err)
	}
	tr.Close()

	tr2, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer tr2.Close()
	if tr2.View().Has(2) {
		t.Fatal("tombstoned id 2 visible after reopen")
	}
	if tr2.View().Live() != 2 || tr2.View().Tombstones() != 1 {
		t.Fatalf("live = %d tombs = %d", tr2.View().Live(), tr2.View().Tombstones())
	}
}

// TestTierSweepsOrphans: segment files not named by the manifest (a
// crash between segment rename and manifest commit) and temp files are
// removed at open.
func TestTierSweepsOrphans(t *testing.T) {
	fsys := faultfs.NewMem()
	dir := "tier"
	tr, err := Open(sparseOpts(fsys, dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := tr.Flush(sparseEntries(1, 2), 3); err != nil {
		t.Fatalf("flush: %v", err)
	}
	tr.Close()

	// Plant an orphan segment and a leftover temp file.
	for _, name := range []string{"seg-00000000000000ff.seg", "seg-0000000000000001.seg.tmp"} {
		f, err := faultfs.Create(fsys, filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("plant %s: %v", name, err)
		}
		if err := writeSegment(f, KindSparse, 0, sparseEntries(100)); err != nil {
			t.Fatalf("write orphan: %v", err)
		}
		f.Close()
	}

	tr2, err := Open(sparseOpts(fsys, dir))
	if err != nil {
		t.Fatalf("reopen with orphans: %v", err)
	}
	defer tr2.Close()
	if tr2.View().Has(100) {
		t.Fatal("orphan segment's entity is visible")
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, n := range names {
		if n == "seg-00000000000000ff.seg" || filepath.Ext(n) == ".tmp" {
			t.Fatalf("debris %s survived open", n)
		}
	}
}

// TestTierRejectsDuplicateFlush: flushing an id the tier already
// stores must fail (the id-uniqueness invariant).
func TestTierRejectsDuplicateFlush(t *testing.T) {
	tr, err := Open(sparseOpts(faultfs.NewMem(), "tier"))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer tr.Close()
	if err := tr.Flush(sparseEntries(1, 2), 3); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := tr.Flush(sparseEntries(2, 3), 4); err == nil {
		t.Fatal("duplicate-id flush accepted")
	}
}

// TestTierMmapPath runs the flush/merge/reopen cycle on the real OS
// filesystem, exercising the mmap reader.
func TestTierMmapPath(t *testing.T) {
	dir := t.TempDir()
	opts := sparseOpts(nil, dir) // nil FS selects the OS and mmap
	tr, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := tr.Flush(sparseEntries(1, 2), 3); err != nil {
		t.Fatalf("flush 1: %v", err)
	}
	if err := tr.Flush(sparseEntries(3, 4), 5); err != nil {
		t.Fatalf("flush 2: %v", err)
	}
	if err := tr.Flush(sparseEntries(5, 6), 7); err != nil {
		t.Fatalf("flush 3: %v", err)
	}
	hits := tr.View().SparseRange([]string{"tok3", "tok4", "grp0"}, 0.01)
	if len(hits) == 0 {
		t.Fatal("no hits from mmap-backed tier")
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	tr2, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if tr2.View().Live() != 6 {
		t.Fatalf("reopened live = %d, want 6", tr2.View().Live())
	}
	if err := tr2.Close(); err != nil {
		t.Fatalf("Close 2: %v", err)
	}
}
