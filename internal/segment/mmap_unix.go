//go:build unix

package segment

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps a real file read-only and returns the mapping plus its
// release func. The file handle is closed immediately — the mapping
// outlives it — so readers hold one mapping, not one descriptor, per
// segment. The OS pages data in on demand and may evict it under
// pressure, which is what keeps the tier's resident footprint bounded
// by the page cache rather than the Go heap.
func mmapFile(f *os.File) ([]byte, func() error, error) {
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 || size > 1<<40 {
		f.Close()
		return nil, nil, fmt.Errorf("segment: unmappable file size %d for %s", size, f.Name())
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	cerr := f.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("segment: mmap %s: %w", st.Name(), err)
	}
	if cerr != nil {
		syscall.Munmap(data)
		return nil, nil, cerr
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
