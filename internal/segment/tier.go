package segment

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
	"erfilter/internal/knn"
	"erfilter/internal/metrics"
	"erfilter/internal/sparse"
	"erfilter/internal/vector"
)

// Options configures a tier.
type Options struct {
	// FS is the file-system seam; nil means the real OS (which also
	// enables mmap-backed segment readers).
	FS faultfs.FS
	// Dir is the tier's dedicated directory; the tier owns every file
	// in it.
	Dir string
	// Kind selects sparse postings or dense vectors.
	Kind Kind
	// Dim is the vector width for dense tiers.
	Dim int
	// Measure scores sparse queries; it must equal the resolver's.
	Measure sparse.Measure
	// Metric scores dense queries; it must equal the resolver's.
	Metric knn.Metric
	// MergeFanin is how many segments a compaction folds together, and
	// (once exceeded) the live-segment count that triggers one.
	// Defaults to 8; minimum 2.
	MergeFanin int
	// Meta is opaque caller metadata pinned into the manifest on first
	// write (the resolver stores its serialized Config). When a
	// manifest already exists its recorded meta wins and is returned
	// by Meta().
	Meta []byte
	// SyncMerge runs compactions inline on the flushing goroutine
	// instead of in the background — deterministic for tests.
	SyncMerge bool
}

// Tier is the on-disk segment store: immutable sorted segment files, a
// CRC-sealed manifest naming the live set, a copy-on-write view readers
// resolve queries against without locks, and a background merge that
// folds small segments together while garbage-collecting tombstones.
type Tier struct {
	fs        faultfs.FS
	dir       string
	kind      Kind
	dim       int
	measure   sparse.Measure
	metric    knn.Metric
	fanin     int
	syncMerge bool

	// mu serializes every mutation: flush, tombstone, merge commit,
	// and the manifest writes each of them publishes. Readers never
	// take it — they load the view pointer.
	mu        sync.Mutex
	gen       uint64
	seq       uint64
	watermark int64
	meta      []byte
	closed    bool
	// retired holds merged-away readers until Close: published views
	// may still reference them, and view snapshots stay valid forever.
	retired []*Reader

	view    atomic.Pointer[View]
	merging atomic.Bool
	wg      sync.WaitGroup

	flushes    atomic.Uint64
	merges     atomic.Uint64
	mergeFails atomic.Uint64
	scanned    atomic.Uint64
	flushNS    metrics.Histogram
	mergeNS    metrics.Histogram
}

// View is one immutable generation of the tier visible to readers:
// the live segments and the tombstone set masking deleted ids. Views
// are published with atomic pointer swaps and remain valid after later
// flushes, deletes, and merges.
type View struct {
	t     *Tier
	segs  []*Reader
	tombs map[int64]struct{}
	live  int
}

// Open loads (or initializes) the tier rooted at opts.Dir: it reads
// and validates the manifest, deletes leftover temp files and orphan
// segments from interrupted flushes or merges, loads every live
// segment with full validation against its manifest entry, and
// cross-checks the global invariants — ids unique across segments,
// every tombstone naming a stored entity.
func Open(opts Options) (*Tier, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	fanin := opts.MergeFanin
	if fanin < 2 {
		fanin = 8
	}
	t := &Tier{
		fs:        fsys,
		dir:       opts.Dir,
		kind:      opts.Kind,
		dim:       opts.Dim,
		measure:   opts.Measure,
		metric:    opts.Metric,
		fanin:     fanin,
		syncMerge: opts.SyncMerge,
		meta:      opts.Meta,
	}
	if err := fsys.MkdirAll(opts.Dir); err != nil {
		return nil, err
	}
	names, err := fsys.ReadDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	man := manifest{Meta: opts.Meta}
	haveMan := false
	for _, n := range names {
		if n == manifestName {
			haveMan = true
		}
	}
	if haveMan {
		data, err := readTierFile(fsys, filepath.Join(opts.Dir, manifestName))
		if err != nil {
			return nil, err
		}
		if man, err = loadManifest(data); err != nil {
			return nil, err
		}
		t.meta = man.Meta
	}
	t.gen = man.Gen
	t.watermark = man.Watermark

	// Sweep temp files and orphan segments — the debris of a crash
	// between a segment rename and its manifest commit. Only files
	// matching our own naming patterns are touched.
	listed := make(map[string]bool, len(man.Segs))
	for _, e := range man.Segs {
		listed[e.Name] = true
	}
	for _, n := range names {
		if n == manifestName || listed[n] {
			continue
		}
		if strings.HasSuffix(n, ".tmp") || isSegName(n) {
			_ = fsys.Remove(filepath.Join(opts.Dir, n))
		}
	}

	segs := make([]*Reader, len(man.Segs))
	for i, e := range man.Segs {
		if e.Kind != t.kind {
			return nil, fmt.Errorf("segment: %s is kind %d, tier expects %d", e.Name, e.Kind, t.kind)
		}
		g, err := t.loadSegment(e.Name)
		if err != nil {
			return nil, err
		}
		if g.count != e.Count || g.minID != e.MinID || g.maxID != e.MaxID || g.Bytes() != e.Bytes || g.kind != e.Kind {
			g.Close()
			return nil, fmt.Errorf("segment: %s disagrees with its manifest entry", e.Name)
		}
		if t.kind == KindDense && g.dim != t.dim {
			g.Close()
			return nil, fmt.Errorf("segment: %s has dim %d, tier expects %d", e.Name, g.dim, t.dim)
		}
		if seq, ok := segSeq(e.Name); ok && seq >= t.seq {
			t.seq = seq + 1
		}
		segs[i] = g
	}
	if err := checkDisjoint(segs); err != nil {
		closeAll(segs)
		return nil, err
	}
	tombs := make(map[int64]struct{}, len(man.Tombs))
	for _, id := range man.Tombs {
		if !anyHas(segs, id) {
			closeAll(segs)
			return nil, fmt.Errorf("segment: tombstone %d names no stored entity", id)
		}
		tombs[id] = struct{}{}
	}
	t.publishLocked(segs, tombs)
	if !haveMan {
		// Seal the empty generation immediately: the manifest pins the
		// caller's meta (its configuration) from the moment the tier
		// exists, and marks the directory as a tier for mode checks,
		// not only after the first flush.
		if err := t.writeManifestLocked(segs, tombs); err != nil {
			closeAll(segs)
			return nil, err
		}
	}
	return t, nil
}

// Exists reports whether dir already holds a tier manifest — the test
// callers use to fail-stop on a storage-mode mismatch before touching
// anything. A nil fsys means the real OS.
func Exists(fsys faultfs.FS, dir string) (bool, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	f, err := faultfs.Open(fsys, filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, f.Close()
}

// ReadMeta returns the opaque caller metadata pinned into an existing
// tier manifest, or nil when dir has no manifest yet. It lets a caller
// recover the configuration a tier was created under before building
// the Options a reopen must match. A nil fsys means the real OS.
func ReadMeta(fsys faultfs.FS, dir string) ([]byte, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	data, err := readTierFile(fsys, filepath.Join(dir, manifestName))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	man, err := loadManifest(data)
	if err != nil {
		return nil, err
	}
	return man.Meta, nil
}

// isSegName reports whether name matches the tier's segment pattern.
func isSegName(name string) bool {
	_, ok := segSeq(name)
	return ok
}

// segSeq parses the sequence number out of a seg-%016x.seg name.
func segSeq(name string) (uint64, bool) {
	const pre, suf = "seg-", ".seg"
	if len(name) != len(pre)+16+len(suf) || !strings.HasPrefix(name, pre) || !strings.HasSuffix(name, suf) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(pre):len(pre)+16], 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// checkDisjoint verifies no id is stored by two segments. Segment id
// ranges may interleave (sharded WAL replay assigns ids out of order
// across batches), so overlapping ranges probe the smaller segment's
// ids against the larger one.
func checkDisjoint(segs []*Reader) error {
	for i := 0; i < len(segs); i++ {
		for j := i + 1; j < len(segs); j++ {
			a, b := segs[i], segs[j]
			if a.minID > b.maxID || b.minID > a.maxID {
				continue
			}
			if b.count < a.count {
				a, b = b, a
			}
			for slot := 0; slot < a.count; slot++ {
				if id := a.id(slot); id >= b.minID && id <= b.maxID && b.has(id) {
					return fmt.Errorf("segment: id %d stored by both %s and %s", id, a.name, b.name)
				}
			}
		}
	}
	return nil
}

func anyHas(segs []*Reader, id int64) bool {
	for _, g := range segs {
		if g.has(id) {
			return true
		}
	}
	return false
}

func closeAll(segs []*Reader) {
	for _, g := range segs {
		if g != nil {
			g.Close()
		}
	}
}

// readTierFile slurps a whole file through the FS seam.
func readTierFile(fsys faultfs.FS, path string) ([]byte, error) {
	f, err := faultfs.Open(fsys, path)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return data, err
}

// loadSegment opens, maps, and fully validates one segment file.
// Real files are mmap'd; fault-injected in-memory files are slurped
// into a resident copy (which also makes them immune to the unlink
// that follows a merge).
func (t *Tier) loadSegment(name string) (*Reader, error) {
	f, err := faultfs.Open(t.fs, filepath.Join(t.dir, name))
	if err != nil {
		return nil, err
	}
	var data []byte
	var unmap func() error
	if osf, ok := f.(*os.File); ok {
		data, unmap, err = mmapFile(osf)
	} else {
		data, err = io.ReadAll(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return nil, fmt.Errorf("segment: reading %s: %w", name, err)
	}
	g, err := Load(data, name, unmap)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, fmt.Errorf("segment: %s: %w", name, err)
	}
	return g, nil
}

// publishLocked swaps in a new view. Callers hold t.mu (or are inside
// Open, before the tier escapes).
func (t *Tier) publishLocked(segs []*Reader, tombs map[int64]struct{}) {
	live := 0
	for _, g := range segs {
		live += g.count
	}
	live -= len(tombs)
	t.view.Store(&View{t: t, segs: segs, tombs: tombs, live: live})
}

// writeManifestLocked persists the next manifest generation atomically
// and bumps the in-memory generation on success.
func (t *Tier) writeManifestLocked(segs []*Reader, tombs map[int64]struct{}) error {
	m := manifest{Gen: t.gen + 1, Watermark: t.watermark, Meta: t.meta}
	m.Segs = make([]manEntry, len(segs))
	for i, g := range segs {
		m.Segs[i] = manEntry{Name: g.name, Kind: g.kind, Count: g.count, MinID: g.minID, MaxID: g.maxID, Bytes: g.Bytes()}
	}
	m.Tombs = make([]int64, 0, len(tombs))
	for id := range tombs {
		m.Tombs = append(m.Tombs, id)
	}
	sort.Slice(m.Tombs, func(i, j int) bool { return m.Tombs[i] < m.Tombs[j] })
	err := faultfs.WriteFileAtomic(t.fs, t.dir, manifestTemp, manifestName, func(w io.Writer) error {
		return writeManifest(w, m)
	})
	if err != nil {
		return err
	}
	t.gen = m.Gen
	return nil
}

// Flush seals the entries (the caller's drained memtable, sorted by
// strictly ascending id) into a new immutable segment, commits a
// manifest generation that includes it plus the current tombstone set,
// and publishes the new view. A nil or empty entries slice still
// commits a manifest — that is how tombstones and the id watermark
// reach disk before a WAL trim. The watermark ratchets the tier's
// persisted next-id floor so reopened stores never reassign an id that
// was ever handed out, even after a merge garbage-collects it.
func (t *Tier) Flush(entries []Entry, watermark int64) error {
	begin := time.Now()
	t.mu.Lock()
	err := t.flushLocked(entries, watermark)
	t.mu.Unlock()
	if err != nil {
		return err
	}
	t.flushes.Add(1)
	t.flushNS.ObserveDuration(time.Since(begin))
	t.maybeMerge()
	return nil
}

func (t *Tier) flushLocked(entries []Entry, watermark int64) error {
	if t.closed {
		return fmt.Errorf("segment: tier is closed")
	}
	if watermark > t.watermark {
		t.watermark = watermark
	}
	cur := t.view.Load()
	segs := cur.segs
	if len(entries) > 0 {
		for i, e := range entries {
			if i > 0 && e.ID <= entries[i-1].ID {
				return fmt.Errorf("segment: flush entries not strictly ascending at %d", i)
			}
			if anyHas(cur.segs, e.ID) {
				return fmt.Errorf("segment: flush entry %d already stored", e.ID)
			}
		}
		name := fmt.Sprintf("seg-%016x.seg", t.seq)
		t.seq++
		err := faultfs.WriteFileAtomic(t.fs, t.dir, name+".tmp", name, func(w io.Writer) error {
			return writeSegment(w, t.kind, t.dim, entries)
		})
		if err != nil {
			return err
		}
		g, err := t.loadSegment(name)
		if err != nil {
			_ = t.fs.Remove(filepath.Join(t.dir, name))
			return err
		}
		segs = append(append(make([]*Reader, 0, len(cur.segs)+1), cur.segs...), g)
	}
	if err := t.writeManifestLocked(segs, cur.tombs); err != nil {
		if len(segs) > len(cur.segs) {
			g := segs[len(segs)-1]
			g.Close()
			_ = t.fs.Remove(filepath.Join(t.dir, g.name))
		}
		return err
	}
	t.publishLocked(segs, cur.tombs)
	return nil
}

// Delete tombstones a stored id, returning false when the tier does
// not hold it (or it is already tombstoned). The tombstone is visible
// to readers immediately via a copy-on-write view swap; it reaches the
// manifest at the next flush or merge, which is always before the WAL
// records that justify it can be trimmed.
func (t *Tier) Delete(id int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	cur := t.view.Load()
	if _, dead := cur.tombs[id]; dead || !anyHas(cur.segs, id) {
		return false
	}
	tombs := make(map[int64]struct{}, len(cur.tombs)+1)
	for k := range cur.tombs {
		tombs[k] = struct{}{}
	}
	tombs[id] = struct{}{}
	t.publishLocked(cur.segs, tombs)
	return true
}

// Has reports whether the tier stores id and it is not tombstoned.
func (t *Tier) Has(id int64) bool { return t.View().Has(id) }

// View returns the current immutable read view.
func (t *Tier) View() *View { return t.view.Load() }

// Watermark returns the persisted next-id floor: callers must not
// assign ids below it.
func (t *Tier) Watermark() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.watermark
}

// Meta returns the manifest's pinned metadata — the Options.Meta of
// the tier's very first manifest write, surviving every generation.
func (t *Tier) Meta() []byte { return t.meta }

// maybeMerge starts (or, for SyncMerge tiers, runs) compaction if the
// live segment count exceeds the fan-in. Merging never holds the tier
// lock while reading or writing segment data — only the brief manifest
// commit and view swap serialize with writers.
func (t *Tier) maybeMerge() {
	if !t.merging.CompareAndSwap(false, true) {
		return
	}
	if t.syncMerge {
		for t.mergeStep() {
		}
		t.merging.Store(false)
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for t.mergeStep() {
		}
		t.merging.Store(false)
	}()
}

// mergeStep folds the MergeFanin smallest segments into one, dropping
// entities tombstoned at merge start, then commits the swap: a new
// manifest generation without the inputs, a view without them, and the
// input files unlinked. Readers holding older views keep working —
// merged-away readers are only closed when the tier itself closes.
// Returns true when it merged (more work may remain), false when the
// tier is below the threshold or an error occurred.
func (t *Tier) mergeStep() bool {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return false
	}
	cur := t.view.Load()
	if len(cur.segs) <= t.fanin {
		t.mu.Unlock()
		return false
	}
	// Pick the fan-in smallest segments — classic size-tiered policy,
	// bounding write amplification by always folding cheap inputs.
	order := make([]int, len(cur.segs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		x, y := cur.segs[order[a]], cur.segs[order[b]]
		if x.count != y.count {
			return x.count < y.count
		}
		return x.name < y.name
	})
	picked := make(map[*Reader]bool, t.fanin)
	inputs := make([]*Reader, 0, t.fanin)
	for _, i := range order[:t.fanin] {
		picked[cur.segs[i]] = true
		inputs = append(inputs, cur.segs[i])
	}
	tombsAt := cur.tombs
	name := fmt.Sprintf("seg-%016x.seg", t.seq)
	t.seq++
	t.mu.Unlock()

	begin := time.Now()
	var merged []Entry
	var dropped []int64
	for _, g := range inputs {
		for _, e := range g.entries() {
			if _, dead := tombsAt[e.ID]; dead {
				dropped = append(dropped, e.ID)
			} else {
				merged = append(merged, e)
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })

	var out *Reader
	if len(merged) > 0 {
		err := faultfs.WriteFileAtomic(t.fs, t.dir, name+".tmp", name, func(w io.Writer) error {
			return writeSegment(w, t.kind, t.dim, merged)
		})
		if err == nil {
			out, err = t.loadSegment(name)
		}
		if err != nil {
			_ = t.fs.Remove(filepath.Join(t.dir, name))
			t.mergeFails.Add(1)
			return false
		}
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		if out != nil {
			out.Close()
		}
		return false
	}
	// Reload the view: flushes and deletes may have landed since merge
	// start. The inputs themselves cannot have changed — only merges
	// remove segments, and the merging flag makes this the only one.
	cur = t.view.Load()
	segs := make([]*Reader, 0, len(cur.segs))
	for _, g := range cur.segs {
		if !picked[g] {
			segs = append(segs, g)
		}
	}
	if out != nil {
		segs = append(segs, out)
	}
	tombs := cur.tombs
	if len(dropped) > 0 {
		tombs = make(map[int64]struct{}, len(cur.tombs))
		for id := range cur.tombs {
			tombs[id] = struct{}{}
		}
		for _, id := range dropped {
			delete(tombs, id)
		}
	}
	if err := t.writeManifestLocked(segs, tombs); err != nil {
		t.mu.Unlock()
		if out != nil {
			out.Close()
			_ = t.fs.Remove(filepath.Join(t.dir, name))
		}
		t.mergeFails.Add(1)
		return false
	}
	t.publishLocked(segs, tombs)
	t.retired = append(t.retired, inputs...)
	t.mu.Unlock()

	// Unlink the merged-away files. Open mmaps keep working on POSIX;
	// a crash before any unlink just leaves orphans for the next Open.
	for _, g := range inputs {
		_ = t.fs.Remove(filepath.Join(t.dir, g.name))
	}
	t.merges.Add(1)
	t.mergeNS.ObserveDuration(time.Since(begin))
	return true
}

// Close waits for any background merge and releases every mapping,
// including retired readers still referenced by old views. Callers
// must have drained queries first.
func (t *Tier) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	t.wg.Wait()
	var err error
	for _, g := range append(t.view.Load().segs, t.retired...) {
		if cerr := g.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// RegisterMetrics exposes the tier's instrumentation: segment-count,
// disk-byte and tombstone gauges, flush/merge counters and duration
// histograms, and the per-query segments-scanned counter.
func (t *Tier) RegisterMetrics(reg *metrics.Registry, labels metrics.Labels) {
	reg.GaugeFunc("segment_live_segments",
		"Live on-disk segments in the current tier view.", labels,
		func() float64 { return float64(t.View().Segments()) })
	reg.GaugeFunc("segment_disk_bytes",
		"Total bytes of the live segment files.", labels,
		func() float64 { return float64(t.View().DiskBytes()) })
	reg.GaugeFunc("segment_tombstones",
		"Deleted entities awaiting merge garbage collection.", labels,
		func() float64 { return float64(t.View().Tombstones()) })
	reg.CounterFunc("segment_flushes_total",
		"Memtable flushes sealed into segments.", labels,
		func() float64 { return float64(t.flushes.Load()) })
	reg.CounterFunc("segment_merges_total",
		"Completed merge compactions.", labels,
		func() float64 { return float64(t.merges.Load()) })
	reg.CounterFunc("segment_merge_failures_total",
		"Merge attempts abandoned on error.", labels,
		func() float64 { return float64(t.mergeFails.Load()) })
	reg.CounterFunc("segment_query_segments_scanned_total",
		"Segments scanned across all tier queries.", labels,
		func() float64 { return float64(t.scanned.Load()) })
	reg.RegisterHistogram("segment_flush_duration_seconds",
		"Memtable flush cost: segment write, manifest commit, view swap.", labels, 1e-9, &t.flushNS)
	reg.RegisterHistogram("segment_merge_duration_seconds",
		"Merge compaction cost: read inputs, write output, commit.", labels, 1e-9, &t.mergeNS)
}

// --- View (reader) methods ---

// Segments returns the live segment count.
func (v *View) Segments() int { return len(v.segs) }

// Live returns the number of stored, non-tombstoned entities.
func (v *View) Live() int { return v.live }

// Tombstones returns the tombstone count awaiting merge GC.
func (v *View) Tombstones() int { return len(v.tombs) }

// DiskBytes returns the total byte size of the live segment files.
func (v *View) DiskBytes() int64 {
	var n int64
	for _, g := range v.segs {
		n += g.Bytes()
	}
	return n
}

// Has reports whether id is stored and live.
func (v *View) Has(id int64) bool {
	if _, dead := v.tombs[id]; dead {
		return false
	}
	return anyHas(v.segs, id)
}

// Get returns the stored attributes of a live id.
func (v *View) Get(id int64) ([]entity.Attribute, bool) {
	if _, dead := v.tombs[id]; dead {
		return nil, false
	}
	for _, g := range v.segs {
		if slot := g.slotOf(id); slot >= 0 {
			return g.attrs(slot), true
		}
	}
	return nil, false
}

// EachLive calls fn for every live entity, in no particular order.
func (v *View) EachLive(fn func(id int64, attrs []entity.Attribute)) {
	for _, g := range v.segs {
		for slot := 0; slot < g.count; slot++ {
			id := g.id(slot)
			if _, dead := v.tombs[id]; dead {
				continue
			}
			fn(id, g.attrs(slot))
		}
	}
}

func (v *View) dead(id int64) bool {
	_, dead := v.tombs[id]
	return dead
}

// SparseRange scatter-gathers an EpsJoin query: the union of per-
// segment range answers, sorted (sim desc, id asc). Unions need no
// per-part cut, so concatenation plus the canonical sort is exact.
func (v *View) SparseRange(query []string, eps float64) []Hit {
	v.t.scanned.Add(uint64(len(v.segs)))
	var out []Hit
	for _, g := range v.segs {
		out = append(out, g.rangeQuery(query, v.t.measure, eps, v.dead)...)
	}
	if len(v.segs) > 1 {
		sortHitsDesc(out)
	}
	return out
}

// SparseKNN scatter-gathers a KNNJoin query: per-segment k-distinct-
// similarity answers folded by the canonical order with the same cut.
// The cut is associative — a candidate outside its own segment's k
// distinct values cannot enter the global k — so this equals a single
// index's answer over the union of live entities.
func (v *View) SparseKNN(query []string, k int) []Hit {
	v.t.scanned.Add(uint64(len(v.segs)))
	var out []Hit
	for _, g := range v.segs {
		out = append(out, g.knnQuery(query, v.t.measure, k, v.dead)...)
	}
	if len(v.segs) > 1 {
		sortHitsDesc(out)
		out = cutDistinct(out, k)
	}
	return out
}

// DenseSearch scatter-gathers a FlatKNN query: per-segment top-k by
// the metric's raw (score asc, id asc) order, folded and re-cut to k.
func (v *View) DenseSearch(q vector.Vec, k int) []Hit {
	v.t.scanned.Add(uint64(len(v.segs)))
	var out []Hit
	for _, g := range v.segs {
		out = append(out, g.denseSearch(q, k, v.t.metric, v.dead)...)
	}
	if len(v.segs) > 1 {
		sortHitsAsc(out)
		if len(out) > k {
			out = out[:k]
		}
	}
	return out
}
