package segment

import (
	"fmt"
	"io"
	"strings"
)

// manMagic identifies a manifest and its format version.
const manMagic = "ERMAN\x01\n\x00"

const (
	// manifestName is the single live manifest file in a tier directory.
	manifestName = "MANIFEST"
	// manifestTemp is the staging name; a leftover temp is deleted at
	// open, exactly like checkpoint temps.
	manifestTemp = "MANIFEST.tmp"

	maxManMeta = 1 << 20
	maxManSegs = 1 << 20
	maxManTomb = 1 << 28
)

// manEntry describes one live segment in a manifest generation. The
// count, id range, and byte size are re-validated against the loaded
// segment at open, so manifest and segment cannot silently disagree.
type manEntry struct {
	Name  string
	Kind  Kind
	Count int
	MinID int64
	MaxID int64
	Bytes int64
}

// manifest is one decoded generation of the tier's state: the live
// segment set, the surviving tombstones, the id watermark no future
// assignment may fall below, and the caller's opaque metadata (the
// resolver pins its serialized Config here).
type manifest struct {
	Gen       uint64
	Watermark int64
	Meta      []byte
	Segs      []manEntry
	Tombs     []int64
}

// writeManifest encodes the manifest with the usual CRC-sealed little-
// endian codec.
func writeManifest(w io.Writer, m manifest) error {
	b := newBinWriter(w)
	b.bytes([]byte(manMagic))
	b.u64(m.Gen)
	b.u64(uint64(m.Watermark))
	b.u32(uint32(len(m.Meta)))
	b.bytes(m.Meta)
	b.u32(uint32(len(m.Segs)))
	for _, e := range m.Segs {
		b.str(e.Name)
		b.u8(uint8(e.Kind))
		b.u32(uint32(e.Count))
		b.u64(uint64(e.MinID))
		b.u64(uint64(e.MaxID))
		b.u64(uint64(e.Bytes))
	}
	b.u32(uint32(len(m.Tombs)))
	for _, id := range m.Tombs {
		b.u64(uint64(id))
	}
	return b.trailer()
}

// loadManifest decodes and fully validates a manifest stream: CRC
// first, then magic, bounded sections, well-formed unique segment
// names, consistent per-segment ranges, and strictly ascending
// tombstones. Cross-file invariants (each tombstone names a stored
// entity, entry metadata matches the segment file) are checked by the
// tier once the segments themselves are loaded.
func loadManifest(data []byte) (manifest, error) {
	var m manifest
	body, err := verifyStream(data, "manifest")
	if err != nil {
		return m, err
	}
	c := &cursor{data: body}
	if string(c.take(len(manMagic))) != manMagic {
		return m, fmt.Errorf("segment: bad manifest magic")
	}
	m.Gen = c.u64()
	m.Watermark = int64(c.u64())
	metaLen := c.u32()
	if c.err == nil && metaLen > maxManMeta {
		return m, fmt.Errorf("segment: manifest meta of %d bytes exceeds limit", metaLen)
	}
	m.Meta = append([]byte(nil), c.take(int(metaLen))...)
	nsegs := c.u32()
	if c.err != nil {
		return m, c.err
	}
	if m.Watermark < 0 {
		return m, fmt.Errorf("segment: negative manifest watermark")
	}
	if nsegs > maxManSegs {
		return m, fmt.Errorf("segment: manifest lists %d segments", nsegs)
	}
	seen := make(map[string]bool, nsegs)
	m.Segs = make([]manEntry, nsegs)
	for i := range m.Segs {
		e := manEntry{
			Name:  c.str(),
			Kind:  Kind(c.u8()),
			Count: int(c.u32()),
			MinID: int64(c.u64()),
			MaxID: int64(c.u64()),
			Bytes: int64(c.u64()),
		}
		if c.err != nil {
			return m, c.err
		}
		if e.Name == "" || strings.ContainsAny(e.Name, "/\\") || seen[e.Name] {
			return m, fmt.Errorf("segment: manifest entry %d has bad name %q", i, e.Name)
		}
		seen[e.Name] = true
		if e.Kind != KindSparse && e.Kind != KindDense {
			return m, fmt.Errorf("segment: manifest entry %q has unknown kind %d", e.Name, e.Kind)
		}
		if e.Count < 1 || e.Count >= maxSegCount || e.MinID > e.MaxID || e.Bytes < 1 {
			return m, fmt.Errorf("segment: manifest entry %q is inconsistent", e.Name)
		}
		m.Segs[i] = e
	}
	ntombs := c.u32()
	if c.err != nil {
		return m, c.err
	}
	if ntombs > maxManTomb {
		return m, fmt.Errorf("segment: manifest lists %d tombstones", ntombs)
	}
	m.Tombs = make([]int64, ntombs)
	for i := range m.Tombs {
		m.Tombs[i] = int64(c.u64())
		if c.err != nil {
			return m, c.err
		}
		if i > 0 && m.Tombs[i] <= m.Tombs[i-1] {
			return m, fmt.Errorf("segment: tombstones not strictly ascending at %d", i)
		}
	}
	if c.off != len(body) {
		return m, fmt.Errorf("segment: %d trailing bytes after manifest", len(body)-c.off)
	}
	return m, nil
}
