// Package segment is the on-disk LSM tier behind the online resolver:
// an in-memory memtable (owned by the caller) flushes immutable, sorted,
// CRC-sealed segment files; a manifest tracks the live segment set and
// its tombstones through atomic generation swaps; and a background merge
// folds small segments together, garbage-collecting tombstoned entities.
// Readers scatter exact EpsJoin/FlatKNN/KNNJoin queries across the live
// segments and merge by the canonical (score desc, id asc) order, so a
// disk-backed resolver answers byte-identically to the in-memory one.
package segment

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// segCRC is the CRC-32 polynomial sealing segment and manifest streams,
// the same Castagnoli table the ERSNAP/ERHNSW codecs use.
var segCRC = crc32.MakeTable(crc32.Castagnoli)

const (
	// maxSegStr bounds any length-prefixed string (tokens, attribute
	// names and values) so a corrupt length cannot drive a huge
	// allocation before the CRC check.
	maxSegStr = 1 << 24
	// maxSegAttr bounds the per-entity attribute count.
	maxSegAttr = 1 << 20
	// maxSegCount bounds the entity count of a single segment file.
	maxSegCount = 1 << 31
)

// binWriter wraps a buffered writer with little-endian encoding and a
// running CRC over everything written, mirroring the ERSNAP writer.
type binWriter struct {
	w   *bufio.Writer
	crc uint32
	off int64
	err error
}

func newBinWriter(w io.Writer) *binWriter {
	return &binWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

func (b *binWriter) bytes(p []byte) {
	if b.err != nil {
		return
	}
	b.crc = crc32.Update(b.crc, segCRC, p)
	n, err := b.w.Write(p)
	b.off += int64(n)
	b.err = err
}

func (b *binWriter) u8(v uint8) { b.bytes([]byte{v}) }

func (b *binWriter) u32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.bytes(buf[:])
}

func (b *binWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.bytes(buf[:])
}

func (b *binWriter) f32(v float32) { b.u32(math.Float32bits(v)) }

func (b *binWriter) str(s string) {
	b.u32(uint32(len(s)))
	b.bytes([]byte(s))
}

// trailer appends the accumulated CRC (not itself CRC'd) and flushes.
func (b *binWriter) trailer() error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], b.crc)
	if b.err == nil {
		_, b.err = b.w.Write(buf[:])
		b.off += 4
	}
	if b.err == nil {
		b.err = b.w.Flush()
	}
	return b.err
}

// cursor decodes a fully-resident byte stream (an mmap'd segment or a
// slurped manifest). Unlike the streaming ERSNAP reader it can seek, so
// validation can walk sections in file order and cross-check the footer.
// The whole-stream CRC is verified before any cursor is built, so every
// read here operates on bytes the trailer has already vouched for.
type cursor struct {
	data []byte
	off  int
	err  error
}

func (c *cursor) fail(format string, args ...interface{}) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.data) {
		c.fail("segment: truncated stream at offset %d (+%d of %d)", c.off, n, len(c.data))
		return nil
	}
	p := c.data[c.off : c.off+n]
	c.off += n
	return p
}

func (c *cursor) u8() uint8 {
	p := c.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (c *cursor) u32() uint32 {
	p := c.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (c *cursor) u64() uint64 {
	p := c.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (c *cursor) str() string {
	n := c.u32()
	if c.err != nil {
		return ""
	}
	if n > maxSegStr {
		c.fail("segment: string length %d exceeds limit", n)
		return ""
	}
	p := c.take(int(n))
	if p == nil {
		return ""
	}
	return string(p)
}

// verifyStream checks the 4-byte CRC trailer against the body and
// returns the body (everything before the trailer).
func verifyStream(data []byte, what string) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("segment: %s too short for CRC trailer", what)
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, segCRC); got != want {
		return nil, fmt.Errorf("segment: %s CRC mismatch: got %08x want %08x", what, got, want)
	}
	return body, nil
}
