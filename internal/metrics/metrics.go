// Package metrics is a pure-stdlib, allocation-free metrics library for
// the serving path: atomic counters and gauges, log-bucketed latency
// histograms with mergeable snapshots (p50/p95/p99 derivable), a registry
// that groups them into families, and Prometheus text-format exposition.
//
// The paper's methodology is measurement — every run-time verdict in
// Tables VI–XI rests on faithful per-method timing — and this package is
// the online counterpart of that discipline: the same histogram type
// backs the offline per-method timing tables and the /metrics endpoint
// of the serving daemon, so batch and serving numbers share one
// measurement substrate.
//
// Recording is wait-free and allocation-free: Observe, Add, Inc and Set
// are a handful of atomic operations on fixed storage. Every method is
// nil-receiver safe and becomes a no-op on a nil metric, which is the
// seam the bare-vs-instrumented overhead benchmarks use.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that may go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: values 0..15 map to their own bucket, and
// every power-of-two octave above that is split into 8 linear
// sub-buckets, so the relative width of any bucket is at most 12.5% —
// tight enough that a p99 read off a bucket edge is within ~12% of the
// true order statistic, while the whole histogram stays a fixed 488
// slots (~4 KiB) recorded with a single atomic add.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits // 8 sub-buckets per octave
	histDirect  = histSub * 2      // 16: values below this map to themselves
	// HistBuckets is the fixed bucket count of every Histogram: the
	// direct buckets plus 8 sub-buckets for each octave up to exponent
	// 62, the highest a positive int64 can reach.
	HistBuckets = histDirect + (62-histSubBits)*histSub
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < histDirect {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // >= histSubBits+1
	sub := int(v>>(uint(exp)-histSubBits)) - histSub
	return histDirect + (exp-histSubBits-1)*histSub + sub
}

// BucketUpper returns the largest value that maps to bucket i — the
// inclusive upper edge used as the `le` boundary in exposition.
func BucketUpper(i int) int64 {
	if i < histDirect {
		return int64(i)
	}
	exp := (i-histDirect)/histSub + histSubBits + 1
	sub := (i - histDirect) % histSub
	return int64(sub+histSub+1)<<(uint(exp)-histSubBits) - 1
}

// Histogram is a fixed-size log-bucketed histogram of non-negative int64
// values (typically nanoseconds). Observe is wait-free and
// allocation-free; any number of goroutines may record concurrently.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		max := h.max.Load()
		if v <= max || h.max.CompareAndSwap(max, v) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot captures a point-in-time copy of the histogram. Concurrent
// recording keeps going; the copy may straddle in-flight observations
// (the per-bucket counts are each exact, the total is advisory while
// writers are active, and exact once they have stopped).
func (h *Histogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{}
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistogramSnapshot is an immutable copy of a histogram, mergeable with
// snapshots of other histograms of the same (fixed) layout.
type HistogramSnapshot struct {
	Count, Sum, Max int64
	Buckets         [HistBuckets]int64
}

// Merge folds another snapshot into s.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Mean returns the arithmetic mean of the observations, 0 when empty.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the upper edge of the bucket holding the q-quantile
// observation (0 < q <= 1), an overestimate by at most one bucket width
// (≤ 12.5% relative). Returns 0 on an empty snapshot.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return s.Max
}
