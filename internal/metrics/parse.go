package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a series name, its labels and
// the scraped value.
type Sample struct {
	Name   string
	Labels Labels
	Value  float64
}

// ParseText parses Prometheus text exposition format (version 0.0.4),
// returning every sample. It is the validation half of WriteText: the
// scrape tests and the CI gate run a live server's /metrics output
// through it and fail on anything unparseable — a malformed name, an
// unterminated label value, a non-numeric sample, a # TYPE naming an
// unknown type, or a histogram whose cumulative bucket counts decrease.
func ParseText(r io.Reader) ([]Sample, error) {
	var samples []Sample
	cumul := map[string]float64{} // histogram series → last cumulative bucket count
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line); err != nil {
				return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		if strings.HasSuffix(s.Name, "_bucket") {
			key := s.Name + "|" + keyWithoutLE(s.Labels)
			if prev, ok := cumul[key]; ok && s.Value < prev {
				return nil, fmt.Errorf("metrics: line %d: histogram %s bucket counts decrease (%g after %g)", lineNo, s.Name, s.Value, prev)
			}
			cumul[key] = s.Value
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

func keyWithoutLE(l Labels) string {
	cp := make(Labels, len(l))
	for k, v := range l {
		if k != "le" {
			cp[k] = v
		}
	}
	return cp.render()
}

func parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment
	}
	if len(fields) < 3 || !validMetricName(fields[2]) {
		return fmt.Errorf("malformed %s comment %q", fields[1], line)
	}
	if fields[1] == "TYPE" {
		if len(fields) < 4 {
			return fmt.Errorf("# TYPE without a type: %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	nameEnd := strings.IndexAny(line, "{ \t")
	if nameEnd < 0 {
		return Sample{}, fmt.Errorf("sample without a value: %q", line)
	}
	s := Sample{Name: line[:nameEnd], Labels: Labels{}}
	if !validMetricName(s.Name) {
		return Sample{}, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[nameEnd:]
	if rest[0] == '{' {
		var err error
		rest, err = parseLabels(rest[1:], s.Labels)
		if err != nil {
			return Sample{}, fmt.Errorf("series %s: %w", s.Name, err)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return Sample{}, fmt.Errorf("series %s: want `value [timestamp]`, got %q", s.Name, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return Sample{}, fmt.Errorf("series %s: bad value %q", s.Name, fields[0])
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return Sample{}, fmt.Errorf("series %s: bad timestamp %q", s.Name, fields[1])
		}
	}
	return s, nil
}

// parseLabels consumes `name="value",...}` and returns what follows the
// closing brace.
func parseLabels(rest string, into Labels) (string, error) {
	for {
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return "", fmt.Errorf("label without '=': %q", rest)
		}
		name := strings.TrimSpace(rest[:eq])
		if !validLabelName(name) {
			return "", fmt.Errorf("invalid label name %q", name)
		}
		rest = strings.TrimLeft(rest[eq+1:], " \t")
		if !strings.HasPrefix(rest, `"`) {
			return "", fmt.Errorf("label %s: unquoted value", name)
		}
		val, tail, err := parseQuoted(rest[1:])
		if err != nil {
			return "", fmt.Errorf("label %s: %w", name, err)
		}
		into[name] = val
		rest = strings.TrimLeft(tail, " \t")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		} else if !strings.HasPrefix(rest, "}") {
			return "", fmt.Errorf("label %s: expected ',' or '}' after value", name)
		}
	}
}

// parseQuoted decodes an escaped label value up to its closing quote.
func parseQuoted(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// Find returns the value of the sample matching name and the given
// labels exactly (le excluded from histogram lookups must be included by
// the caller when wanted). ok is false when no sample matches.
func Find(samples []Sample, name string, labels Labels) (v float64, ok bool) {
	want := labels.render()
	for _, s := range samples {
		if s.Name == name && s.Labels.render() == want {
			return s.Value, true
		}
	}
	return 0, false
}
