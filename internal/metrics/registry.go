package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels is the constant label set of one series. Labels are fixed at
// registration time — there is no dynamic label lookup on the hot path;
// a labelled series is just a distinct metric instance.
type Labels map[string]string

// render flattens labels into the canonical `k="v",...` form, sorted by
// key so identical label sets always render identically.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		if !validLabelName(k) {
			panic(fmt.Sprintf("metrics: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l[k]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validMetricName(s)
}

// series is one registered metric instance under a family.
type series struct {
	labels  string
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
	scale   float64 // histogram exposition multiplier (1e-9: ns → seconds)
}

// family groups every series sharing a metric name; one # HELP/# TYPE
// block is emitted per family.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds the metric families of one process and renders them in
// the Prometheus text exposition format. Registration takes a lock;
// recording on the returned metrics never does.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds a series, panicking on programmer errors: an invalid
// name, a type clash inside a family, or a duplicate (name, labels).
func (r *Registry) register(name, help, typ string, s *series) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.typ, typ))
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("metrics: duplicate series %s{%s}", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter creates and registers a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, labels, c)
	return c
}

// RegisterCounter registers an existing counter (the path for metrics
// owned by another package, e.g. the WAL's).
func (r *Registry) RegisterCounter(name, help string, labels Labels, c *Counter) {
	r.register(name, help, "counter", &series{labels: labels.render(), counter: c})
}

// Gauge creates and registers a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", &series{labels: labels.render(), gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the fit for values another structure already maintains (queue depths,
// entity counts, uptime). fn must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "gauge", &series{labels: labels.render(), gaugeFn: fn})
}

// CounterFunc registers a counter whose value is read at scrape time
// from state another structure already maintains monotonically (WAL
// record counts, epoch numbers). fn must be safe to call concurrently
// and must never decrease.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "counter", &series{labels: labels.render(), gaugeFn: fn})
}

// Histogram creates and registers a histogram series. scale multiplies
// raw observed values on exposition only (1e-9 turns nanosecond
// observations into the conventional _seconds unit); 0 means 1.
func (r *Registry) Histogram(name, help string, labels Labels, scale float64) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, help, labels, scale, h)
	return h
}

// RegisterHistogram registers an existing histogram.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, scale float64, h *Histogram) {
	if scale == 0 {
		scale = 1
	}
	r.register(name, help, "histogram", &series{labels: labels.render(), hist: h, scale: scale})
}

// WriteText renders every family in the Prometheus text exposition
// format (version 0.0.4), families and series in lexicographic order so
// the output is deterministic. Histograms emit cumulative buckets at the
// non-empty bucket edges plus +Inf — a sparse but valid le set.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	sers := make([][]*series, len(names))
	for i, name := range names {
		f := r.families[name]
		fams[i] = f
		ss := make([]*series, len(f.series))
		copy(ss, f.series)
		sort.Slice(ss, func(a, b int) bool { return ss[a].labels < ss[b].labels })
		sers[i] = ss
	}
	r.mu.Unlock()

	// Render outside the lock: gauge functions may take other locks
	// (e.g. the resolver's writer mutex) and must not nest under ours.
	for i, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range sers[i] {
			if err := writeSeries(w, f.name, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func writeSeries(w io.Writer, name string, s *series) error {
	switch {
	case s.counter != nil:
		return writeSample(w, name, s.labels, float64(s.counter.Value()))
	case s.gauge != nil:
		return writeSample(w, name, s.labels, float64(s.gauge.Value()))
	case s.gaugeFn != nil:
		return writeSample(w, name, s.labels, s.gaugeFn())
	default:
		return writeHistogram(w, name, s)
	}
}

func writeSample(w io.Writer, name, labels string, v float64) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(v))
	}
	return err
}

// writeHistogram emits the conventional _bucket/_sum/_count triple with
// cumulative counts. Only buckets that are non-empty contribute an edge;
// +Inf always closes the series.
func writeHistogram(w io.Writer, name string, s *series) error {
	snap := s.hist.Snapshot()
	var cum int64
	for i, n := range snap.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		// 12 significant digits suppress binary noise in edge*scale
		// (40959e-9 would otherwise print as 4.0959000000000005e-05)
		// while keeping every edge distinct.
		le := strconv.FormatFloat(float64(BucketUpper(i))*s.scale, 'g', 12, 64)
		if err := writeSample(w, name+"_bucket", joinLabels(s.labels, `le="`+le+`"`), float64(cum)); err != nil {
			return err
		}
	}
	if err := writeSample(w, name+"_bucket", joinLabels(s.labels, `le="+Inf"`), float64(snap.Count)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", s.labels, float64(snap.Sum)*s.scale); err != nil {
		return err
	}
	return writeSample(w, name+"_count", s.labels, float64(snap.Count))
}

func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
