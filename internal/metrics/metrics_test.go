package metrics

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketMapping pins the bucket layout: every bucket's inclusive
// upper edge maps back into the bucket, the next value maps past it, and
// the mapping is monotone over a sweep of magnitudes.
func TestBucketMapping(t *testing.T) {
	for i := 0; i < HistBuckets; i++ {
		up := BucketUpper(i)
		if got := bucketOf(up); got != i {
			t.Fatalf("BucketUpper(%d)=%d maps to bucket %d", i, up, got)
		}
		if up < math.MaxInt64 {
			if got := bucketOf(up + 1); got != i+1 {
				t.Fatalf("value %d (one past bucket %d) maps to bucket %d", up+1, i, got)
			}
		}
	}
	if got := bucketOf(math.MaxInt64); got != HistBuckets-1 {
		t.Fatalf("MaxInt64 maps to bucket %d, want %d", got, HistBuckets-1)
	}
	prev := -1
	for v := int64(0); v < 1<<20; v += 97 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucket mapping not monotone at %d: %d after %d", v, b, prev)
		}
		prev = b
	}
}

// TestBucketRelativeError checks the layout's precision claim: no bucket
// above the direct range is wider than 12.5% of its lower edge.
func TestBucketRelativeError(t *testing.T) {
	for i := histDirect; i < HistBuckets; i++ {
		lo, hi := BucketUpper(i-1)+1, BucketUpper(i)
		if width := float64(hi-lo+1) / float64(lo); width > 0.125+1e-9 {
			t.Fatalf("bucket %d [%d,%d] has relative width %f", i, lo, hi, width)
		}
	}
}

// TestHistogramConcurrentProperty is the concurrency contract, run under
// -race by the Makefile gate: N goroutines recording M observations each
// produce exactly the snapshot of the same observations recorded
// sequentially — nothing lost, nothing double-counted.
func TestHistogramConcurrentProperty(t *testing.T) {
	const goroutines = 8
	const perG = 5000
	values := make([][]int64, goroutines)
	rng := rand.New(rand.NewSource(42))
	for g := range values {
		values[g] = make([]int64, perG)
		for i := range values[g] {
			// Mix magnitudes: sub-microsecond to tens of seconds in ns.
			values[g][i] = rng.Int63n(1 << uint(10+rng.Intn(25)))
		}
	}

	concurrent := &Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(vs []int64) {
			defer wg.Done()
			for _, v := range vs {
				concurrent.Observe(v)
			}
		}(values[g])
	}
	wg.Wait()

	sequential := &Histogram{}
	for _, vs := range values {
		for _, v := range vs {
			sequential.Observe(v)
		}
	}

	cs, ss := concurrent.Snapshot(), sequential.Snapshot()
	if *cs != *ss {
		t.Fatalf("concurrent snapshot diverges from sequential:\nconc: count=%d sum=%d max=%d\nseq:  count=%d sum=%d max=%d",
			cs.Count, cs.Sum, cs.Max, ss.Count, ss.Sum, ss.Max)
	}
	if cs.Count != goroutines*perG {
		t.Fatalf("count=%d, want %d", cs.Count, goroutines*perG)
	}
}

// TestSnapshotMergeEquivalence: merging per-shard snapshots equals one
// histogram fed everything — the property that lets per-worker
// histograms reduce into one table line.
func TestSnapshotMergeEquivalence(t *testing.T) {
	shards := make([]*Histogram, 4)
	whole := &Histogram{}
	rng := rand.New(rand.NewSource(7))
	for i := range shards {
		shards[i] = &Histogram{}
		for j := 0; j < 1000; j++ {
			v := rng.Int63n(1 << 30)
			shards[i].Observe(v)
			whole.Observe(v)
		}
	}
	merged := shards[0].Snapshot()
	for _, h := range shards[1:] {
		merged.Merge(h.Snapshot())
	}
	if *merged != *whole.Snapshot() {
		t.Fatal("merged shard snapshots diverge from the single histogram")
	}
}

// TestQuantile bounds the quantile estimate: for a known distribution the
// reported quantile is >= the true order statistic and within one bucket
// width (12.5%) above it.
func TestQuantile(t *testing.T) {
	h := &Histogram{}
	for v := int64(1); v <= 10000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.95, 0.99} {
		truth := int64(math.Ceil(q * 10000))
		got := s.Quantile(q)
		if got < truth || float64(got) > float64(truth)*1.125+1 {
			t.Fatalf("Quantile(%v) = %d, want within [%d, %d]", q, got, truth, int64(float64(truth)*1.125)+1)
		}
	}
	if (&HistogramSnapshot{}).Quantile(0.99) != 0 {
		t.Fatal("empty snapshot quantile must be 0")
	}
}

// TestNilSafety: every recording and reading method is a no-op on nil —
// the disable seam of the bare-vs-instrumented benchmark pair.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(10)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil histogram must stay empty")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Observe(v)
			v = v*2147483647 + 12345 // cheap LCG to spread buckets
			if v < 0 {
				v = -v
			}
		}
	})
}

// TestExpositionGolden pins the exact text format one registry renders —
// the wire contract of GET /metrics.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("erserve_http_request_errors_total", "Requests answered with status >= 400.", Labels{"endpoint": "query"})
	c.Add(3)
	g := reg.Gauge("erserve_write_queue_depth", "Admitted writes in flight.", nil)
	g.Set(2)
	reg.GaugeFunc("erserve_uptime_seconds", "Seconds since the daemon started.", nil, func() float64 { return 12.5 })
	h := reg.Histogram("erserve_http_request_duration_seconds", "Request latency.", Labels{"endpoint": "query"}, 1e-9)
	h.Observe(5)     // bucket 5, le 5e-09
	h.Observe(5)     // same bucket
	h.Observe(17)    // bucket [16,17], le 1.7e-08
	h.Observe(40000) // le 4.0959e-05

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP erserve_http_request_duration_seconds Request latency.",
		"# TYPE erserve_http_request_duration_seconds histogram",
		`erserve_http_request_duration_seconds_bucket{endpoint="query",le="5e-09"} 2`,
		`erserve_http_request_duration_seconds_bucket{endpoint="query",le="1.7e-08"} 3`,
		`erserve_http_request_duration_seconds_bucket{endpoint="query",le="4.0959e-05"} 4`,
		`erserve_http_request_duration_seconds_bucket{endpoint="query",le="+Inf"} 4`,
		`erserve_http_request_duration_seconds_sum{endpoint="query"} 4.0027e-05`,
		`erserve_http_request_duration_seconds_count{endpoint="query"} 4`,
		"# HELP erserve_http_request_errors_total Requests answered with status >= 400.",
		"# TYPE erserve_http_request_errors_total counter",
		`erserve_http_request_errors_total{endpoint="query"} 3`,
		"# HELP erserve_uptime_seconds Seconds since the daemon started.",
		"# TYPE erserve_uptime_seconds gauge",
		"erserve_uptime_seconds 12.5",
		"# HELP erserve_write_queue_depth Admitted writes in flight.",
		"# TYPE erserve_write_queue_depth gauge",
		"erserve_write_queue_depth 2",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The golden output must round-trip through our own parser.
	samples, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("golden output unparseable: %v", err)
	}
	if v, ok := Find(samples, "erserve_http_request_errors_total", Labels{"endpoint": "query"}); !ok || v != 3 {
		t.Fatalf("Find errors_total: %v %v", v, ok)
	}
	if v, ok := Find(samples, "erserve_http_request_duration_seconds_count", Labels{"endpoint": "query"}); !ok || v != 4 {
		t.Fatalf("Find histogram count: %v %v", v, ok)
	}
}

// TestParseRejectsGarbage: the CI scrape gate must actually bite.
func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"1metric 3",                                  // name starts with a digit
		`m{l="unterminated} 1`,                       // unterminated label value
		"m notanumber",                               // non-numeric value
		"# TYPE m frobnicator",                       // unknown type
		`m{l="a"} 1 notatimestamp`,                   // bad timestamp
		"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3", // decreasing cumulative buckets
		`m{="x"} 1`,                                  // empty label name
	}
	for _, in := range bad {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Fatalf("ParseText accepted %q", in)
		}
	}
	good := "# arbitrary comment\n\nm_total{a=\"x\\\"y\\n\\\\z\"} 4 1700000000000\nplain 1\n"
	samples, err := ParseText(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := Find(samples, "m_total", Labels{"a": "x\"y\n\\z"}); !ok || v != 4 {
		t.Fatalf("escaped label round-trip: %v %v %+v", v, ok, samples)
	}
}

// TestLabelRendering pins deterministic, escaped label rendering.
func TestLabelRendering(t *testing.T) {
	l := Labels{"b": `say "hi"`, "a": "x\ny"}
	want := `a="x\ny",b="say \"hi\""`
	if got := l.render(); got != want {
		t.Fatalf("render: %q, want %q", got, want)
	}
}
