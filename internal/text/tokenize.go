// Package text provides the textual preprocessing substrate shared by all
// filtering methods: tokenization, character n-grams, q-gram / suffix /
// substring signature extraction, multiset ("counter") token handling,
// stop-word removal, Porter stemming, and the ten representation models of
// the paper's Table IV (T1G, T1GM, C2G ... C5GM).
package text

import (
	"strconv"
	"strings"
	"unicode"
)

// Tokenize splits a textual value into lower-cased tokens on any
// non-alphanumeric character. This is the "whitespace tokenization" of
// Standard Blocking generalized to punctuation, matching the behaviour of
// the JedAI toolkit the paper builds on.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// NGrams returns the character n-grams of s (as runes). Strings shorter
// than n yield the string itself as a single gram (if non-empty), matching
// the convention of q-gram blocking implementations.
func NGrams(s string, n int) []string {
	r := []rune(s)
	if len(r) == 0 {
		return nil
	}
	if len(r) <= n {
		return []string{string(r)}
	}
	out := make([]string, 0, len(r)-n+1)
	for i := 0; i+n <= len(r); i++ {
		out = append(out, string(r[i:i+n]))
	}
	return out
}

// Suffixes returns the suffixes of s with at least minLen characters,
// including s itself. Used by Suffix Arrays Blocking.
func Suffixes(s string, minLen int) []string {
	r := []rune(s)
	if len(r) < minLen {
		return nil
	}
	out := make([]string, 0, len(r)-minLen+1)
	for i := 0; i+minLen <= len(r); i++ {
		out = append(out, string(r[i:]))
	}
	return out
}

// Substrings returns all substrings of s with at least minLen characters,
// including s itself. Used by Extended Suffix Arrays Blocking.
func Substrings(s string, minLen int) []string {
	r := []rune(s)
	if len(r) < minLen {
		return nil
	}
	var out []string
	for i := 0; i < len(r); i++ {
		for j := i + minLen; j <= len(r); j++ {
			out = append(out, string(r[i:j]))
		}
	}
	return out
}

// QGramCombinations implements the signature construction of Extended
// Q-Grams Blocking: given the q-grams g of one token, it concatenates every
// combination of at least L = max(1, floor(k*T)) q-grams, where k = len(g)
// and T in [0,1). Combinations preserve the original q-gram order and are
// joined with "_". maxGrams caps k to keep the 2^k enumeration bounded; the
// grams beyond the cap are ignored (long tokens contribute their prefix
// grams, which is the JedAI behaviour for its default cap).
func QGramCombinations(grams []string, t float64, maxGrams int) []string {
	k := len(grams)
	if k == 0 {
		return nil
	}
	if k > maxGrams {
		grams = grams[:maxGrams]
		k = maxGrams
	}
	l := int(float64(k) * t)
	if l < 1 {
		l = 1
	}
	var out []string
	// Enumerate all non-empty subsets of the (capped) gram list and keep
	// those with at least l elements.
	for mask := 1; mask < 1<<k; mask++ {
		if popcount(mask) < l {
			continue
		}
		var sb strings.Builder
		for i := 0; i < k; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			if sb.Len() > 0 {
				sb.WriteByte('_')
			}
			sb.WriteString(grams[i])
		}
		out = append(out, sb.String())
	}
	return out
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// CounterTokens converts a token multiset into a set by attaching an
// occurrence counter to each repeated token: {a, a, b} -> {a#1, a#2, b#1}.
// This is the de-duplication scheme of Table IV's multiset representation
// models (T1GM, C2GM, ...).
func CounterTokens(tokens []string) []string {
	counts := make(map[string]int, len(tokens))
	out := make([]string, len(tokens))
	for i, tok := range tokens {
		counts[tok]++
		out[i] = tok + "#" + strconv.Itoa(counts[tok])
	}
	return out
}

// Dedup returns the distinct tokens of the input, preserving first-seen
// order.
func Dedup(tokens []string) []string {
	seen := make(map[string]struct{}, len(tokens))
	out := tokens[:0:0]
	for _, tok := range tokens {
		if _, ok := seen[tok]; ok {
			continue
		}
		seen[tok] = struct{}{}
		out = append(out, tok)
	}
	return out
}
