package text

import "strings"

// stopwords is the English stop-word list used by the cleaning step of the
// NN workflow (Figure 2). It mirrors the nltk English list the paper uses.
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range strings.Fields(`
i me my myself we our ours ourselves you your yours yourself yourselves
he him his himself she her hers herself it its itself they them their
theirs themselves what which who whom this that these those am is are was
were be been being have has had having do does did doing a an the and but
if or because as until while of at by for with about against between into
through during before after above below to from up down in out on off over
under again further then once here there when where why how all any both
each few more most other some such no nor not only own same so than too
very s t can will just don should now d ll m o re ve y ain aren couldn
didn doesn hadn hasn haven isn ma mightn mustn needn shan shouldn wasn
weren won wouldn`) {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the lower-cased token is an English stop-word.
func IsStopword(tok string) bool {
	_, ok := stopwords[strings.ToLower(tok)]
	return ok
}

// Clean applies the optional pre-processing of the NN workflow (Figure 2):
// it lower-cases, tokenizes, removes stop-words and stems every remaining
// token with the Porter stemmer, returning the rebuilt string.
func Clean(s string) string {
	toks := Tokenize(s)
	out := make([]string, 0, len(toks))
	for _, tok := range toks {
		if IsStopword(tok) {
			continue
		}
		out = append(out, Stem(tok))
	}
	return strings.Join(out, " ")
}

// CleanAll applies Clean to every element of texts, returning a new slice.
func CleanAll(texts []string) []string {
	out := make([]string, len(texts))
	for i, s := range texts {
		out[i] = Clean(s)
	}
	return out
}
