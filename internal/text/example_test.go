package text_test

import (
	"fmt"

	"erfilter/internal/text"
)

// ExampleStem shows Porter stemming as used by the cleaning step of the
// NN workflow.
func ExampleStem() {
	for _, w := range []string{"running", "cameras", "relational"} {
		fmt.Println(text.Stem(w))
	}
	// Output:
	// run
	// camera
	// relat
}

// ExampleClean shows the full cleaning step: stop-word removal plus
// stemming.
func ExampleClean() {
	fmt.Println(text.Clean("The quick cameras are running"))
	// Output: quick camera run
}

// ExampleModel_Tokens shows the representation models of Table IV.
func ExampleModel_Tokens() {
	t1g := text.Model{N: 1}
	fmt.Println(t1g.Tokens("red red fox"))
	t1gm := text.Model{N: 1, Multiset: true}
	fmt.Println(t1gm.Tokens("red red fox"))
	// Output:
	// [red fox]
	// [red#1 red#2 fox#1]
}

// ExampleNGrams shows character q-grams, the signatures of Q-Grams
// Blocking.
func ExampleNGrams() {
	fmt.Println(text.NGrams("biden", 3))
	// Output: [bid ide den]
}

// ExampleSuffixes shows the signatures of Suffix Arrays Blocking.
func ExampleSuffixes() {
	fmt.Println(text.Suffixes("biden", 3))
	// Output: [biden iden den]
}
