package text

import (
	"fmt"
	"strings"
)

// Model is one of the ten representation models of Table IV: whitespace
// tokens (T1G) or character n-grams (C2G..C5G), each as a set or as a
// multiset (the M-suffixed variants, de-duplicated with counters).
type Model struct {
	// N is 1 for whitespace tokens, or the n-gram length (2..5) for
	// character n-grams.
	N int
	// Multiset keeps repeated tokens by attaching occurrence counters.
	Multiset bool
}

// Models enumerates all ten representation models in the order of Table IV:
// T1G, T1GM, C2G, C2GM, C3G, C3GM, C4G, C4GM, C5G, C5GM.
func Models() []Model {
	var out []Model
	for _, n := range []int{1, 2, 3, 4, 5} {
		out = append(out, Model{N: n}, Model{N: n, Multiset: true})
	}
	return out
}

// ParseModel converts a Table IV model name (e.g. "C5GM", "T1G") to a Model.
func ParseModel(name string) (Model, error) {
	var m Model
	s := strings.ToUpper(strings.TrimSpace(name))
	if strings.HasSuffix(s, "M") {
		m.Multiset = true
		s = strings.TrimSuffix(s, "M")
	}
	switch s {
	case "T1G":
		m.N = 1
	case "C2G", "C3G", "C4G", "C5G":
		m.N = int(s[1] - '0')
	default:
		return Model{}, fmt.Errorf("text: unknown representation model %q", name)
	}
	return m, nil
}

// String returns the Table IV name of the model.
func (m Model) String() string {
	var base string
	if m.N == 1 {
		base = "T1G"
	} else {
		base = fmt.Sprintf("C%dG", m.N)
	}
	if m.Multiset {
		return base + "M"
	}
	return base
}

// Tokens extracts the model's token set (or counter-expanded multiset) from
// a textual value. For n-gram models the grams are taken over the whole
// lower-cased string with whitespace runs collapsed to single spaces, so
// cross-token grams carry word-boundary information, as in set-similarity
// join practice.
func (m Model) Tokens(s string) []string {
	var toks []string
	if m.N == 1 {
		toks = Tokenize(s)
	} else {
		norm := strings.Join(Tokenize(s), " ")
		toks = NGrams(norm, m.N)
	}
	if m.Multiset {
		return CounterTokens(toks)
	}
	return Dedup(toks)
}
