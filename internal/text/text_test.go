package text

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Joe Biden", []string{"joe", "biden"}},
		{"  A-b_c 42! ", []string{"a", "b", "c", "42"}},
		{"", nil},
		{"...", nil},
		{"ABT CD2400", []string{"abt", "cd2400"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNGrams(t *testing.T) {
	got := NGrams("biden", 3)
	want := []string{"bid", "ide", "den"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NGrams(biden,3) = %v, want %v", got, want)
	}
	if got := NGrams("ab", 3); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Fatalf("short string should yield itself, got %v", got)
	}
	if got := NGrams("", 3); got != nil {
		t.Fatalf("empty string should yield nil, got %v", got)
	}
	// Unicode safety.
	if got := NGrams("日本語х", 2); len(got) != 3 {
		t.Fatalf("rune-based n-grams expected 3 grams, got %v", got)
	}
}

// TestPaperExample reproduces the worked "Joe Biden" example of Section IV-B.
func TestPaperExample(t *testing.T) {
	// Standard Blocking keys: {joe, biden}.
	std := Tokenize("Joe Biden")
	if !reflect.DeepEqual(std, []string{"joe", "biden"}) {
		t.Fatalf("standard keys = %v", std)
	}

	// Q-Grams Blocking with q=3: {joe, bid, ide, den}.
	var qg []string
	for _, tok := range std {
		qg = append(qg, NGrams(tok, 3)...)
	}
	sort.Strings(qg)
	want := []string{"bid", "den", "ide", "joe"}
	if !reflect.DeepEqual(qg, want) {
		t.Fatalf("q-gram keys = %v, want %v", qg, want)
	}

	// Extended Q-Grams with T=0.9: joe has k=1 gram -> L=max(1,0)=1 -> {joe};
	// biden has k=3 grams -> L=max(1,floor(2.7))=2 -> the 4 combinations of
	// at least two of {bid,ide,den}. Total 5 keys.
	var eqg []string
	for _, tok := range std {
		eqg = append(eqg, QGramCombinations(NGrams(tok, 3), 0.9, 15)...)
	}
	sort.Strings(eqg)
	wantE := []string{"bid_den", "bid_ide", "bid_ide_den", "ide_den", "joe"}
	if !reflect.DeepEqual(eqg, wantE) {
		t.Fatalf("extended q-gram keys = %v, want %v", eqg, wantE)
	}

	// Suffix Arrays with lmin=3: {joe, biden, iden, den}.
	var sa []string
	for _, tok := range std {
		sa = append(sa, Suffixes(tok, 3)...)
	}
	sort.Strings(sa)
	wantS := []string{"biden", "den", "iden", "joe"}
	if !reflect.DeepEqual(sa, wantS) {
		t.Fatalf("suffix keys = %v, want %v", sa, wantS)
	}

	// Extended Suffix Arrays with lmin=3: all substrings of length >= 3:
	// {joe, biden, bide, iden, bid, ide, den} = 7 keys.
	var esa []string
	for _, tok := range std {
		esa = append(esa, Substrings(tok, 3)...)
	}
	if len(esa) != 7 {
		t.Fatalf("extended suffix keys = %v (want 7 keys)", esa)
	}
	sort.Strings(esa)
	wantES := []string{"bid", "bide", "biden", "den", "ide", "iden", "joe"}
	if !reflect.DeepEqual(esa, wantES) {
		t.Fatalf("extended suffix keys = %v, want %v", esa, wantES)
	}
}

func TestQGramCombinationsLowThreshold(t *testing.T) {
	// With T=0 every non-empty subset qualifies (L=1): 2^3-1 = 7 combos.
	got := QGramCombinations([]string{"a", "b", "c"}, 0, 15)
	if len(got) != 7 {
		t.Fatalf("expected 7 combinations, got %d: %v", len(got), got)
	}
}

func TestQGramCombinationsCap(t *testing.T) {
	grams := make([]string, 30)
	for i := range grams {
		grams[i] = strings.Repeat("x", 3)
	}
	got := QGramCombinations(grams, 0.95, 10)
	if len(got) == 0 || len(got) > 1<<10 {
		t.Fatalf("cap not honoured, got %d combos", len(got))
	}
}

func TestCounterTokens(t *testing.T) {
	got := CounterTokens([]string{"a", "a", "b"})
	want := []string{"a#1", "a#2", "b#1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CounterTokens = %v, want %v", got, want)
	}
}

func TestDedup(t *testing.T) {
	got := Dedup([]string{"b", "a", "b", "c", "a"})
	want := []string{"b", "a", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Dedup = %v, want %v", got, want)
	}
}

func TestSubstringsAndSuffixesAgree(t *testing.T) {
	// Every suffix is a substring.
	f := func(s string, minLen uint8) bool {
		m := int(minLen%5) + 1
		subs := map[string]bool{}
		for _, x := range Substrings(s, m) {
			subs[x] = true
		}
		for _, x := range Suffixes(s, m) {
			if !subs[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelNames(t *testing.T) {
	names := []string{"T1G", "T1GM", "C2G", "C2GM", "C3G", "C3GM", "C4G", "C4GM", "C5G", "C5GM"}
	ms := Models()
	if len(ms) != len(names) {
		t.Fatalf("Models() returned %d models", len(ms))
	}
	for i, m := range ms {
		if m.String() != names[i] {
			t.Errorf("model %d = %s, want %s", i, m, names[i])
		}
		parsed, err := ParseModel(names[i])
		if err != nil {
			t.Fatalf("ParseModel(%s): %v", names[i], err)
		}
		if parsed != m {
			t.Errorf("ParseModel(%s) = %+v, want %+v", names[i], parsed, m)
		}
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Fatal("ParseModel should reject unknown names")
	}
}

func TestModelTokens(t *testing.T) {
	m := Model{N: 1}
	got := m.Tokens("red red fox")
	if !reflect.DeepEqual(got, []string{"red", "fox"}) {
		t.Fatalf("T1G tokens = %v", got)
	}
	mm := Model{N: 1, Multiset: true}
	got = mm.Tokens("red red fox")
	if !reflect.DeepEqual(got, []string{"red#1", "red#2", "fox#1"}) {
		t.Fatalf("T1GM tokens = %v", got)
	}
	c2 := Model{N: 2}
	got = c2.Tokens("ab cd")
	// normalized "ab cd": grams ab, "b ", " c", cd
	if len(got) != 4 {
		t.Fatalf("C2G tokens = %v", got)
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "The"} {
		if !IsStopword(w) {
			t.Errorf("%q should be a stopword", w)
		}
	}
	for _, w := range []string{"camera", "nikon", "resolution"} {
		if IsStopword(w) {
			t.Errorf("%q should not be a stopword", w)
		}
	}
}

func TestClean(t *testing.T) {
	got := Clean("The running foxes are jumping!")
	// stop-words removed, remaining tokens stemmed
	want := "run fox jump"
	if got != want {
		t.Fatalf("Clean = %q, want %q", got, want)
	}
	if got := Clean("the and of"); got != "" {
		t.Fatalf("all-stopword input should clean to empty, got %q", got)
	}
}

// TestPorterGolden checks the stemmer against reference pairs from Porter's
// published vocabulary.
func TestPorterGolden(t *testing.T) {
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemIdempotentOnShort(t *testing.T) {
	for _, w := range []string{"a", "an", "it", "42", "Δδ"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemNeverPanicsAndNeverGrows(t *testing.T) {
	f := func(s string) bool {
		w := strings.ToLower(s)
		return len(Stem(w)) <= len(w)+1 // step1b can append an 'e'
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
