package core

import (
	"testing"

	"erfilter/internal/blocking"
	"erfilter/internal/datagen"
	"erfilter/internal/entity"
	"erfilter/internal/metablocking"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

func quickTask(t *testing.T) *entity.Task {
	t.Helper()
	return datagen.Generate(datagen.QuickSpec(60, 150, 40, 42))
}

func TestEvaluate(t *testing.T) {
	truth := entity.NewGroundTruth([]entity.Pair{{Left: 0, Right: 0}, {Left: 1, Right: 1}})
	pairs := []entity.Pair{
		{Left: 0, Right: 0}, // match
		{Left: 0, Right: 0}, // duplicate entry, counted once
		{Left: 0, Right: 1}, // non-match
		{Left: 2, Right: 2}, // non-match
	}
	m := Evaluate(pairs, truth)
	if m.Candidates != 3 {
		t.Fatalf("candidates = %d", m.Candidates)
	}
	if m.Matches != 1 {
		t.Fatalf("matches = %d", m.Matches)
	}
	if m.PC != 0.5 {
		t.Fatalf("PC = %v", m.PC)
	}
	if m.PQ != 1.0/3.0 {
		t.Fatalf("PQ = %v", m.PQ)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	truth := entity.NewGroundTruth(nil)
	m := Evaluate(nil, truth)
	if m.PC != 0 || m.PQ != 0 || m.Candidates != 0 {
		t.Fatalf("empty evaluation = %+v", m)
	}
}

func TestBlockingWorkflowEndToEnd(t *testing.T) {
	task := quickTask(t)
	in := NewInput(task, entity.SchemaAgnostic)
	w := &BlockingWorkflow{
		Builder:     blocking.Standard{},
		Purging:     true,
		FilterRatio: 0.8,
		Cleaning:    ComparisonCleaning{Scheme: metablocking.ARCS, Algorithm: metablocking.RCNP},
	}
	out, err := w.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(out.Pairs, task.Truth)
	if m.PC < 0.7 {
		t.Fatalf("blocking workflow PC = %.2f, too low", m.PC)
	}
	if m.Candidates >= task.E1.Len()*task.E2.Len() {
		t.Fatal("no reduction over the Cartesian product")
	}
	if out.Timing.Total <= 0 {
		t.Fatal("timing not recorded")
	}
}

func TestPBWHighRecall(t *testing.T) {
	task := quickTask(t)
	in := NewInput(task, entity.SchemaAgnostic)
	out, err := NewPBW().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(out.Pairs, task.Truth)
	// Comparison Propagation loses no recall over the purged blocks.
	if m.PC < 0.9 {
		t.Fatalf("PBW PC = %.2f", m.PC)
	}
}

func TestComparisonPropagationNoRecallLoss(t *testing.T) {
	task := quickTask(t)
	in := NewInput(task, entity.SchemaAgnostic)
	noClean := &BlockingWorkflow{
		Builder: blocking.Standard{}, FilterRatio: 1,
		Cleaning: ComparisonCleaning{Propagation: true},
	}
	out, err := noClean.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(out.Pairs, task.Truth)
	// PC of CP equals the PC upper bound of the raw blocks.
	blocks := noClean.BlocksAfterCleaning(in)
	ub := Evaluate(metablocking.Propagate(blocks), task.Truth)
	if m.PC != ub.PC {
		t.Fatalf("CP PC %.3f != block PC upper bound %.3f", m.PC, ub.PC)
	}
}

func TestMetaBlockingImprovesPrecision(t *testing.T) {
	task := quickTask(t)
	in := NewInput(task, entity.SchemaAgnostic)
	cp := &BlockingWorkflow{Builder: blocking.Standard{}, Purging: true, FilterRatio: 1,
		Cleaning: ComparisonCleaning{Propagation: true}}
	o1, _ := cp.Run(in)
	m1 := Evaluate(o1.Pairs, task.Truth)
	best := 0.0
	for _, alg := range metablocking.Algorithms() {
		mb := &BlockingWorkflow{Builder: blocking.Standard{}, Purging: true, FilterRatio: 1,
			Cleaning: ComparisonCleaning{Scheme: metablocking.ARCS, Algorithm: alg}}
		o2, _ := mb.Run(in)
		if m2 := Evaluate(o2.Pairs, task.Truth); m2.PQ > best {
			best = m2.PQ
		}
	}
	if best <= m1.PQ {
		t.Fatalf("no meta-blocking configuration beat CP PQ %.3f (best %.3f)", m1.PQ, best)
	}
}

func TestSparseFiltersEndToEnd(t *testing.T) {
	task := quickTask(t)
	in := NewInput(task, entity.SchemaAgnostic)

	eps := &EpsJoinFilter{Clean: true, Model: text.Model{N: 3}, Measure: sparse.Cosine, Threshold: 0.3}
	out, err := eps.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(out.Pairs, task.Truth)
	if m.PC < 0.6 {
		t.Fatalf("eps-join PC = %.2f", m.PC)
	}

	knnj := &KNNJoinFilter{Clean: true, Model: text.Model{N: 3}, Measure: sparse.Cosine, K: 2}
	out2, err := knnj.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	m2 := Evaluate(out2.Pairs, task.Truth)
	if m2.PC < 0.6 {
		t.Fatalf("knn-join PC = %.2f", m2.PC)
	}
	// Cardinality threshold: |C| <= ~k * |queries| (ties aside).
	if m2.Candidates > 3*2*task.E2.Len() {
		t.Fatalf("knn-join candidates %d way beyond k*|E2|", m2.Candidates)
	}
	if out2.Timing.Query <= 0 {
		t.Fatal("query phase not timed")
	}
}

func TestDenseFiltersEndToEnd(t *testing.T) {
	task := datagen.Generate(datagen.QuickSpec(40, 80, 25, 43))
	in := NewInputDim(task, entity.SchemaAgnostic, 64)
	in.Seed = 3

	for _, f := range []Filter{
		&MinHashFilter{Bands: 32, Rows: 4, K: 3},
		&HyperplaneFilter{Tables: 8, Hashes: 6, Probes: 4},
		&CrossPolytopeFilter{Tables: 8, Hashes: 1, LastCPDim: 16, Probes: 4},
		&FlatKNNFilter{K: 3},
		&PartitionedKNNFilter{K: 3},
		&PartitionedKNNFilter{K: 3, Scoring: 1 /* AH */},
		&DeepBlockerFilter{K: 3, Hidden: 16, Epochs: 3},
	} {
		out, err := f.Run(in)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		m := Evaluate(out.Pairs, task.Truth)
		if m.PC < 0.3 {
			t.Errorf("%s: PC = %.2f, suspiciously low", f.Name(), m.PC)
		}
		if m.Candidates == 0 {
			t.Errorf("%s: no candidates", f.Name())
		}
	}
}

func TestFlatKNNReverseDirection(t *testing.T) {
	task := datagen.Generate(datagen.QuickSpec(30, 90, 20, 44))
	in := NewInputDim(task, entity.SchemaAgnostic, 32)
	fwd := &FlatKNNFilter{K: 1}
	rev := &FlatKNNFilter{K: 1, Reverse: true}
	of, _ := fwd.Run(in)
	or, _ := rev.Run(in)
	// Forward: one candidate per E2 entity (90); reverse: per E1 (30).
	if len(of.Pairs) != task.E2.Len() {
		t.Fatalf("forward pairs = %d, want %d", len(of.Pairs), task.E2.Len())
	}
	if len(or.Pairs) != task.E1.Len() {
		t.Fatalf("reverse pairs = %d, want %d", len(or.Pairs), task.E1.Len())
	}
	for _, p := range or.Pairs {
		if int(p.Left) >= task.E1.Len() || int(p.Right) >= task.E2.Len() {
			t.Fatalf("reverse pair out of range: %v", p)
		}
	}
}

func TestSchemaBasedViewsSmaller(t *testing.T) {
	task := datagen.ByName("D2", 0.05)
	agn := NewInput(task, entity.SchemaAgnostic)
	bas := NewInput(task, entity.SchemaBased)
	sAgn := entity.TextStatsOf(agn.V1, agn.V2)
	sBas := entity.TextStatsOf(bas.V1, bas.V2)
	if sBas.CharacterLength >= sAgn.CharacterLength {
		t.Fatalf("schema-based chars %d >= agnostic %d", sBas.CharacterLength, sAgn.CharacterLength)
	}
	if sBas.VocabularySize >= sAgn.VocabularySize {
		t.Fatalf("schema-based vocab %d >= agnostic %d", sBas.VocabularySize, sAgn.VocabularySize)
	}
}

func TestInputCaching(t *testing.T) {
	task := datagen.Generate(datagen.QuickSpec(20, 30, 10, 45))
	in := NewInputDim(task, entity.SchemaAgnostic, 16)
	a1, _ := in.Texts(true)
	b1, _ := in.Texts(true)
	if &a1[0] != &b1[0] {
		t.Fatal("cleaned texts not cached")
	}
	e1, _ := in.Embeddings(false)
	e2, _ := in.Embeddings(false)
	if &e1[0] != &e2[0] {
		t.Fatal("embeddings not cached")
	}
	fresh := in.Fresh()
	f1, _ := fresh.Texts(true)
	if &f1[0] == &a1[0] {
		t.Fatal("Fresh did not drop caches")
	}
}

func TestBaselineConstructors(t *testing.T) {
	if NewPBW().Name() == "" || NewDBW().Name() == "" {
		t.Fatal("baseline names empty")
	}
	dk := NewDkNN(true)
	if dk.Reverse {
		t.Fatal("DkNN with smaller E2 should not reverse")
	}
	dk2 := NewDkNN(false)
	if !dk2.Reverse {
		t.Fatal("DkNN with smaller E1 should reverse")
	}
	if NewDDB(true).K != 5 {
		t.Fatal("DDB K != 5")
	}
}
