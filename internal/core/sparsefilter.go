package core

import (
	"fmt"

	"erfilter/internal/entity"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

// EpsJoinFilter is the range-join sparse NN method (ε-Join, Table IV).
type EpsJoinFilter struct {
	// Clean applies stop-word removal and stemming first (CL).
	Clean bool
	// Model is the representation model (RM).
	Model text.Model
	// Measure is the similarity measure (SM).
	Measure sparse.Measure
	// Threshold is the similarity threshold t.
	Threshold float64
}

// Name implements Filter.
func (f *EpsJoinFilter) Name() string {
	return fmt.Sprintf("eps-join[cl=%v,%s,%s,t=%.2f]", f.Clean, f.Model, f.Measure, f.Threshold)
}

// Run implements Filter.
func (f *EpsJoinFilter) Run(in *Input) (*Outcome, error) {
	sw := newStopwatch()
	out := &Outcome{}

	t1, t2 := in.Texts(f.Clean)
	out.Timing.Preprocess = sw.lap()

	corpus := sparse.BuildCorpus(t1, t2, f.Model)
	idx := sparse.NewIndex(corpus.Sets1, corpus.NumTokens)
	out.Timing.Index = sw.lap()

	var pairs []entity.Pair
	for e2, q := range corpus.Sets2 {
		for _, n := range idx.RangeQuery(q, f.Measure, f.Threshold) {
			pairs = append(pairs, entity.Pair{Left: n.Entity, Right: int32(e2)})
		}
	}
	out.Timing.Query = sw.lap()
	out.Timing.Total = sw.total()
	out.Pairs = pairs
	return out, nil
}

// KNNJoinFilter is the k-nearest-neighbor-join sparse NN method (Table IV).
type KNNJoinFilter struct {
	// Clean applies stop-word removal and stemming first (CL).
	Clean bool
	// Model is the representation model (RM).
	Model text.Model
	// Measure is the similarity measure (SM).
	Measure sparse.Measure
	// K is the cardinality threshold: neighbors per query entity.
	K int
	// Reverse (RVS) indexes E2 and queries with E1 instead of the
	// default direction.
	Reverse bool
}

// Name implements Filter.
func (f *KNNJoinFilter) Name() string {
	return fmt.Sprintf("knn-join[cl=%v,%s,%s,k=%d,rvs=%v]", f.Clean, f.Model, f.Measure, f.K, f.Reverse)
}

// Run implements Filter.
func (f *KNNJoinFilter) Run(in *Input) (*Outcome, error) {
	sw := newStopwatch()
	out := &Outcome{}

	t1, t2 := in.Texts(f.Clean)
	out.Timing.Preprocess = sw.lap()

	corpus := sparse.BuildCorpus(t1, t2, f.Model)
	indexSets, querySets := corpus.Sets1, corpus.Sets2
	if f.Reverse {
		indexSets, querySets = corpus.Sets2, corpus.Sets1
	}
	idx := sparse.NewIndex(indexSets, corpus.NumTokens)
	out.Timing.Index = sw.lap()

	var pairs []entity.Pair
	for qi, q := range querySets {
		for _, n := range idx.KNNQuery(q, f.Measure, f.K) {
			if f.Reverse {
				pairs = append(pairs, entity.Pair{Left: int32(qi), Right: n.Entity})
			} else {
				pairs = append(pairs, entity.Pair{Left: n.Entity, Right: int32(qi)})
			}
		}
	}
	out.Timing.Query = sw.lap()
	out.Timing.Total = sw.total()
	out.Pairs = pairs
	return out, nil
}
