package core

import (
	"fmt"

	"erfilter/internal/blocking"
	"erfilter/internal/cleaning"
	"erfilter/internal/entity"
	"erfilter/internal/metablocking"
)

// ComparisonCleaning selects the mandatory comparison cleaning step of a
// blocking workflow: parameter-free Comparison Propagation, or one of the
// 42 Meta-blocking combinations (6 weighting schemes × 7 pruning
// algorithms).
type ComparisonCleaning struct {
	// Propagation selects Comparison Propagation; Scheme/Algorithm are
	// ignored when set.
	Propagation bool
	Scheme      metablocking.Scheme
	Algorithm   metablocking.Algorithm
}

// String implements fmt.Stringer.
func (c ComparisonCleaning) String() string {
	if c.Propagation {
		return "CP"
	}
	return c.Algorithm.String() + "+" + c.Scheme.String()
}

// BlockingWorkflow is the four-step pipeline of Figure 1: block building,
// optional Block Purging, optional Block Filtering, and mandatory
// comparison cleaning.
type BlockingWorkflow struct {
	// Label names the workflow family (e.g. "SBW") for reports.
	Label string
	// Builder is the block building method.
	Builder blocking.Builder
	// Purging enables the parameter-free Block Purging step.
	Purging bool
	// FilterRatio is the Block Filtering ratio r; r >= 1 skips the step.
	FilterRatio float64
	// Cleaning is the comparison cleaning step.
	Cleaning ComparisonCleaning
}

// Name implements Filter.
func (w *BlockingWorkflow) Name() string {
	label := w.Label
	if label == "" {
		label = "blocking"
	}
	return fmt.Sprintf("%s[%s,purge=%v,r=%.3f,%s]",
		label, w.Builder.Name(), w.Purging, w.FilterRatio, w.Cleaning)
}

// Run implements Filter.
func (w *BlockingWorkflow) Run(in *Input) (*Outcome, error) {
	sw := newStopwatch()
	out := &Outcome{}

	blocks := blocking.Build(in.V1, in.V2, w.Builder)
	out.Timing.Build = sw.lap()

	if w.Purging {
		blocks = cleaning.Purge(blocks)
	}
	out.Timing.Purge = sw.lap()

	if w.FilterRatio > 0 && w.FilterRatio < 1 {
		blocks = cleaning.Filter(blocks, w.FilterRatio)
	}
	out.Timing.Filter = sw.lap()

	var pairs []entity.Pair
	if w.Cleaning.Propagation {
		pairs = metablocking.Propagate(blocks)
	} else {
		g := metablocking.BuildGraph(blocks)
		pairs = metablocking.Prune(g, w.Cleaning.Scheme, w.Cleaning.Algorithm, blocks.TotalPlacements())
	}
	out.Timing.Clean = sw.lap()
	out.Timing.Total = sw.total()
	out.Pairs = pairs
	return out, nil
}

// BlocksAfterCleaning exposes the intermediate block collection after the
// block cleaning steps (before comparison cleaning), used by diagnostics
// and tuning early-termination: if the PC upper bound of these blocks is
// already below the target, no comparison cleaning can recover it.
func (w *BlockingWorkflow) BlocksAfterCleaning(in *Input) *blocking.Collection {
	blocks := blocking.Build(in.V1, in.V2, w.Builder)
	if w.Purging {
		blocks = cleaning.Purge(blocks)
	}
	if w.FilterRatio > 0 && w.FilterRatio < 1 {
		blocks = cleaning.Filter(blocks, w.FilterRatio)
	}
	return blocks
}
