package core

import (
	"erfilter/internal/blocking"
	"erfilter/internal/metablocking"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

// The four baseline methods of Section VI ("Baseline methods"): default
// parameter settings shared across all datasets, contrasted against the
// fine-tuned configurations to quantify the benefit of tuning.

// NewPBW returns the Parameter-free Blocking Workflow: Standard Blocking +
// Block Purging + Comparison Propagation, all parameter-free.
func NewPBW() *BlockingWorkflow {
	return &BlockingWorkflow{
		Label:       "PBW",
		Builder:     blocking.Standard{},
		Purging:     true,
		FilterRatio: 1,
		Cleaning:    ComparisonCleaning{Propagation: true},
	}
}

// NewDBW returns the Default Blocking Workflow: Q-Grams Blocking with q=6,
// Block Filtering with ratio 0.5, and WEP+ECBS comparison cleaning — the
// best-performing default configuration of the prior blocking study the
// paper adopts.
func NewDBW() *BlockingWorkflow {
	return &BlockingWorkflow{
		Label:       "DBW",
		Builder:     blocking.QGrams{Q: 6},
		Purging:     false,
		FilterRatio: 0.5,
		Cleaning: ComparisonCleaning{
			Scheme:    metablocking.ECBS,
			Algorithm: metablocking.WEP,
		},
	}
}

// NewDkNN returns the Default kNN-Join: cosine similarity, cleaned values,
// the C5GM representation model and K=5, querying with the smaller
// dataset. smallerIsE2 reports whether E2 is the smaller collection (then
// the default direction already queries with it; otherwise the join is
// reversed).
func NewDkNN(smallerIsE2 bool) *KNNJoinFilter {
	return &KNNJoinFilter{
		Clean:   true,
		Model:   text.Model{N: 5, Multiset: true}, // C5GM
		Measure: sparse.Cosine,
		K:       5,
		Reverse: !smallerIsE2,
	}
}

// NewDDB returns the Default DeepBlocker: cleaned values, K=5, querying
// with the smaller dataset, Autoencoder tuple embedding.
func NewDDB(smallerIsE2 bool) *DeepBlockerFilter {
	return &DeepBlockerFilter{
		Clean:   true,
		K:       5,
		Reverse: !smallerIsE2,
	}
}
