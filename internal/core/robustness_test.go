package core

import (
	"testing"

	"erfilter/internal/blocking"
	"erfilter/internal/entity"
	"erfilter/internal/metablocking"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

// emptyTask builds degenerate tasks for failure-injection testing.
func taskOf(t *testing.T, texts1, texts2 []string, truth []entity.Pair) *entity.Task {
	t.Helper()
	mk := func(name string, texts []string) *entity.Dataset {
		profiles := make([]entity.Profile, len(texts))
		for i, s := range texts {
			profiles[i] = entity.Profile{Attrs: []entity.Attribute{{Name: "v", Value: s}}}
		}
		return entity.New(name, profiles)
	}
	return &entity.Task{
		Name:          "degenerate",
		E1:            mk("E1", texts1),
		E2:            mk("E2", texts2),
		Truth:         entity.NewGroundTruth(truth),
		BestAttribute: "v",
	}
}

// allFilters enumerates one representative configuration per method.
func allFilters() []Filter {
	return []Filter{
		NewPBW(),
		NewDBW(),
		&BlockingWorkflow{Builder: blocking.Standard{}, FilterRatio: 0.5,
			Cleaning: ComparisonCleaning{Scheme: metablocking.ARCS, Algorithm: metablocking.WEP}},
		&EpsJoinFilter{Model: text.Model{N: 3}, Measure: sparse.Cosine, Threshold: 0.3},
		&KNNJoinFilter{Model: text.Model{N: 3}, Measure: sparse.Cosine, K: 2},
		&MinHashFilter{Bands: 8, Rows: 4, K: 3},
		&HyperplaneFilter{Tables: 2, Hashes: 4, Probes: 2},
		&CrossPolytopeFilter{Tables: 2, Hashes: 1, LastCPDim: 8, Probes: 2},
		&FlatKNNFilter{K: 2},
		&PartitionedKNNFilter{K: 2},
		&DeepBlockerFilter{K: 2, Hidden: 4, Epochs: 1},
	}
}

func runAllFilters(t *testing.T, task *entity.Task, label string) {
	t.Helper()
	in := NewInputDim(task, entity.SchemaAgnostic, 16)
	for _, f := range allFilters() {
		out, err := f.Run(in)
		if err != nil {
			t.Errorf("%s: %s returned error: %v", label, f.Name(), err)
			continue
		}
		m := Evaluate(out.Pairs, task.Truth)
		if m.PC < 0 || m.PC > 1 || m.PQ < 0 || m.PQ > 1 {
			t.Errorf("%s: %s metrics out of range: %+v", label, f.Name(), m)
		}
		for _, p := range out.Pairs {
			if int(p.Left) >= task.E1.Len() || int(p.Right) >= task.E2.Len() || p.Left < 0 || p.Right < 0 {
				t.Errorf("%s: %s produced out-of-range pair %v", label, f.Name(), p)
				break
			}
		}
	}
}

func TestFiltersOnEmptyE1(t *testing.T) {
	runAllFilters(t, taskOf(t, nil, []string{"canon a540", "nikon p100"}, nil), "empty E1")
}

func TestFiltersOnEmptyE2(t *testing.T) {
	runAllFilters(t, taskOf(t, []string{"canon a540"}, nil, nil), "empty E2")
}

func TestFiltersOnBothEmpty(t *testing.T) {
	runAllFilters(t, taskOf(t, nil, nil, nil), "both empty")
}

func TestFiltersOnSingleEntities(t *testing.T) {
	runAllFilters(t, taskOf(t,
		[]string{"canon powershot a540"},
		[]string{"canon power shot a540"},
		[]entity.Pair{{Left: 0, Right: 0}}), "single entities")
}

func TestFiltersOnEmptyTexts(t *testing.T) {
	runAllFilters(t, taskOf(t,
		[]string{"", "canon a540", ""},
		[]string{"", "canon a540 camera"},
		[]entity.Pair{{Left: 1, Right: 1}}), "empty texts")
}

func TestFiltersOnPunctuationOnlyTexts(t *testing.T) {
	runAllFilters(t, taskOf(t,
		[]string{"...", "!!!"},
		[]string{"???"},
		nil), "punctuation-only")
}

func TestFiltersOnUnicode(t *testing.T) {
	runAllFilters(t, taskOf(t,
		[]string{"café münchen 北京", "ψηφιακή κάμερα"},
		[]string{"cafe munchen 北京", "ψηφιακη καμερα canon"},
		[]entity.Pair{{Left: 0, Right: 0}, {Left: 1, Right: 1}}), "unicode")
}

func TestFiltersOnAllStopwords(t *testing.T) {
	// Cleaning reduces these texts to nothing; cleaned variants must not
	// crash.
	task := taskOf(t,
		[]string{"the and of", "a an the"},
		[]string{"of and the"},
		nil)
	in := NewInputDim(task, entity.SchemaAgnostic, 16)
	for _, f := range []Filter{
		&KNNJoinFilter{Clean: true, Model: text.Model{N: 3}, Measure: sparse.Cosine, K: 1},
		&EpsJoinFilter{Clean: true, Model: text.Model{N: 1}, Measure: sparse.Jaccard, Threshold: 0.5},
		&FlatKNNFilter{Clean: true, K: 1},
		&DeepBlockerFilter{Clean: true, K: 1, Hidden: 4, Epochs: 1},
	} {
		if _, err := f.Run(in); err != nil {
			t.Errorf("all-stopwords: %s: %v", f.Name(), err)
		}
	}
}
