package core

import (
	"fmt"

	"erfilter/internal/deepblocker"
	"erfilter/internal/entity"
	"erfilter/internal/knn"
	"erfilter/internal/lsh"
	"erfilter/internal/vector"
)

// MinHashFilter is MinHash LSH over character k-shingles (Table V). It is
// the only dense NN method with a syntactic scope (Table I).
type MinHashFilter struct {
	Clean       bool
	Bands, Rows int
	// K is the shingle size.
	K int
}

// Name implements Filter.
func (f *MinHashFilter) Name() string {
	return fmt.Sprintf("mh-lsh[cl=%v,bands=%d,rows=%d,k=%d]", f.Clean, f.Bands, f.Rows, f.K)
}

// Run implements Filter.
func (f *MinHashFilter) Run(in *Input) (*Outcome, error) {
	sw := newStopwatch()
	out := &Outcome{}

	t1, t2 := in.Texts(f.Clean)
	out.Timing.Preprocess = sw.lap()

	mh := &lsh.MinHash{Bands: f.Bands, Rows: f.Rows, K: f.K, Seed: in.Seed}
	idx := mh.Build(t1)
	out.Timing.Index = sw.lap()

	var pairs []entity.Pair
	for j, s := range t2 {
		idx.Query(s, func(e1 int32) {
			pairs = append(pairs, entity.Pair{Left: e1, Right: int32(j)})
		})
	}
	out.Timing.Query = sw.lap()
	out.Timing.Total = sw.total()
	out.Pairs = pairs
	return out, nil
}

// HyperplaneFilter is Hyperplane LSH over tuple embeddings (Table V).
type HyperplaneFilter struct {
	Clean          bool
	Tables, Hashes int
	Probes         int
}

// Name implements Filter.
func (f *HyperplaneFilter) Name() string {
	return fmt.Sprintf("hp-lsh[cl=%v,tables=%d,hashes=%d,probes=%d]", f.Clean, f.Tables, f.Hashes, f.Probes)
}

// Run implements Filter.
func (f *HyperplaneFilter) Run(in *Input) (*Outcome, error) {
	sw := newStopwatch()
	out := &Outcome{}

	v1, v2 := in.Embeddings(f.Clean)
	out.Timing.Preprocess = sw.lap()

	hp := &lsh.Hyperplane{Tables: f.Tables, Hashes: f.Hashes, Probes: f.Probes, Seed: in.Seed}
	idx := hp.Build(v1)
	out.Timing.Index = sw.lap()

	var pairs []entity.Pair
	for j, v := range v2 {
		idx.Query(v, func(e1 int32) {
			pairs = append(pairs, entity.Pair{Left: e1, Right: int32(j)})
		})
	}
	out.Timing.Query = sw.lap()
	out.Timing.Total = sw.total()
	out.Pairs = pairs
	return out, nil
}

// CrossPolytopeFilter is Cross-Polytope LSH over tuple embeddings.
type CrossPolytopeFilter struct {
	Clean          bool
	Tables, Hashes int
	LastCPDim      int
	Probes         int
}

// Name implements Filter.
func (f *CrossPolytopeFilter) Name() string {
	return fmt.Sprintf("cp-lsh[cl=%v,tables=%d,hashes=%d,cpdim=%d,probes=%d]",
		f.Clean, f.Tables, f.Hashes, f.LastCPDim, f.Probes)
}

// Run implements Filter.
func (f *CrossPolytopeFilter) Run(in *Input) (*Outcome, error) {
	sw := newStopwatch()
	out := &Outcome{}

	v1, v2 := in.Embeddings(f.Clean)
	out.Timing.Preprocess = sw.lap()

	cp := &lsh.CrossPolytope{Tables: f.Tables, Hashes: f.Hashes, LastCPDim: f.LastCPDim, Probes: f.Probes, Seed: in.Seed}
	idx := cp.Build(v1)
	out.Timing.Index = sw.lap()

	var pairs []entity.Pair
	for j, v := range v2 {
		idx.Query(v, func(e1 int32) {
			pairs = append(pairs, entity.Pair{Left: e1, Right: int32(j)})
		})
	}
	out.Timing.Query = sw.lap()
	out.Timing.Total = sw.total()
	out.Pairs = pairs
	return out, nil
}

// searchToPairs runs the kNN search of every query vector against the
// index and converts the hits to pairs, honoring the RVS direction.
func searchToPairs(idx knn.Searcher, queries []vector.Vec, k int, reverse bool) []entity.Pair {
	var pairs []entity.Pair
	for qi, q := range queries {
		for _, r := range idx.Search(q, k) {
			if reverse {
				pairs = append(pairs, entity.Pair{Left: int32(qi), Right: r.ID})
			} else {
				pairs = append(pairs, entity.Pair{Left: r.ID, Right: int32(qi)})
			}
		}
	}
	return pairs
}

// FlatKNNFilter is the FAISS analog: exact (Flat-index) kNN search over
// normalized tuple embeddings with Euclidean distance, the configuration
// the paper settles on for FAISS.
type FlatKNNFilter struct {
	Clean   bool
	K       int
	Reverse bool
}

// Name implements Filter.
func (f *FlatKNNFilter) Name() string {
	return fmt.Sprintf("faiss-flat[cl=%v,k=%d,rvs=%v]", f.Clean, f.K, f.Reverse)
}

// Run implements Filter.
func (f *FlatKNNFilter) Run(in *Input) (*Outcome, error) {
	sw := newStopwatch()
	out := &Outcome{}

	v1, v2 := in.Embeddings(f.Clean)
	out.Timing.Preprocess = sw.lap()

	indexed, queries := v1, v2
	if f.Reverse {
		indexed, queries = v2, v1
	}
	idx := knn.NewFlat(indexed, knn.L2Squared)
	out.Timing.Index = sw.lap()

	out.Pairs = searchToPairs(idx, queries, f.K, f.Reverse)
	out.Timing.Query = sw.lap()
	out.Timing.Total = sw.total()
	return out, nil
}

// PartitionedKNNFilter is the SCANN analog: k-means-partitioned kNN search
// with brute-force or asymmetric-hashing scoring.
type PartitionedKNNFilter struct {
	Clean   bool
	K       int
	Reverse bool
	Scoring knn.Scoring
	Metric  knn.Metric
}

// Name implements Filter.
func (f *PartitionedKNNFilter) Name() string {
	return fmt.Sprintf("scann[cl=%v,k=%d,rvs=%v,%s,%s]", f.Clean, f.K, f.Reverse, f.Scoring, f.Metric)
}

// Run implements Filter.
func (f *PartitionedKNNFilter) Run(in *Input) (*Outcome, error) {
	sw := newStopwatch()
	out := &Outcome{}

	v1, v2 := in.Embeddings(f.Clean)
	out.Timing.Preprocess = sw.lap()

	indexed, queries := v1, v2
	if f.Reverse {
		indexed, queries = v2, v1
	}
	idx := knn.NewPartitioned(indexed, knn.PartitionedConfig{
		Metric:  f.Metric,
		Scoring: f.Scoring,
		Seed:    in.Seed,
	})
	out.Timing.Index = sw.lap()

	out.Pairs = searchToPairs(idx, queries, f.K, f.Reverse)
	out.Timing.Query = sw.lap()
	out.Timing.Total = sw.total()
	return out, nil
}

// DeepBlockerFilter is the DeepBlocker analog: the Autoencoder
// tuple-embedding module trained self-supervised on the (substituted)
// fastText embeddings, with exact kNN for indexing and querying. Training
// happens in the preprocessing phase, which dominates the run-time, as the
// paper observes.
type DeepBlockerFilter struct {
	Clean   bool
	K       int
	Reverse bool
	// Hidden and Epochs override the autoencoder defaults (0 = default).
	Hidden, Epochs int
}

// Name implements Filter.
func (f *DeepBlockerFilter) Name() string {
	return fmt.Sprintf("deepblocker[cl=%v,k=%d,rvs=%v]", f.Clean, f.K, f.Reverse)
}

// Run implements Filter.
func (f *DeepBlockerFilter) Run(in *Input) (*Outcome, error) {
	sw := newStopwatch()
	out := &Outcome{}

	v1, v2 := in.Embeddings(f.Clean)
	// Train on the union of both collections (self-supervised).
	training := make([]vector.Vec, 0, len(v1)+len(v2))
	training = append(training, v1...)
	training = append(training, v2...)
	ae := deepblocker.Train(training, deepblocker.TrainConfig{
		Hidden: f.Hidden,
		Epochs: f.Epochs,
		Seed:   in.Seed,
	})
	e1 := ae.EncodeAll(v1)
	e2 := ae.EncodeAll(v2)
	out.Timing.Preprocess = sw.lap()

	indexed, queries := e1, e2
	if f.Reverse {
		indexed, queries = e2, e1
	}
	idx := knn.NewFlat(indexed, knn.L2Squared)
	out.Timing.Index = sw.lap()

	out.Pairs = searchToPairs(idx, queries, f.K, f.Reverse)
	out.Timing.Query = sw.lap()
	out.Timing.Total = sw.total()
	return out, nil
}
