// Package core assembles the substrates into the 18 filtering methods the
// paper evaluates — five blocking workflows, two sparse NN methods, six
// dense NN methods and the four default-parameter baselines — behind a
// single Filter interface, and provides the Pair Completeness / Pairs
// Quality evaluation of Section III.
package core

import (
	"sync"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/text"
	"erfilter/internal/vector"
)

// Timing is the per-phase run-time breakdown of one filtering run.
// Blocking workflows fill Build/Purge/Filter/Clean (Figures 7–9, left
// columns); NN methods fill Preprocess/Index/Query (middle and right
// columns). Total is always the end-to-end run-time RT.
type Timing struct {
	Total time.Duration

	// Blocking workflow phases (t_b, t_p, t_f, t_c).
	Build, Purge, Filter, Clean time.Duration

	// NN method phases (t_r, t_i, t_q).
	Preprocess, Index, Query time.Duration
}

// Outcome is the result of one filtering run: the candidate pairs plus the
// phase timings.
type Outcome struct {
	Pairs  []entity.Pair
	Timing Timing
}

// Filter is one configured filtering method.
type Filter interface {
	// Name identifies the method and its configuration.
	Name() string
	// Run produces the candidate pairs of the input task.
	Run(in *Input) (*Outcome, error)
}

// Input bundles a task under one schema setting, with lazily cached
// cleaned texts and embeddings so configuration sweeps do not recompute
// them for every candidate configuration. Use Fresh for timing
// measurements that must include the preprocessing cost.
//
// The caches live behind a mutex so that concurrent grid-search workers
// may share one Input; WithSeed derives per-repetition inputs that share
// the caches without mutating the original.
type Input struct {
	Task    *entity.Task
	Setting entity.SchemaSetting
	V1, V2  *entity.View

	// Seed drives every stochastic component of a run (LSH, DeepBlocker).
	Seed uint64

	embDim int
	caches *inputCaches
}

// inputCaches holds the lazily computed derived data of an Input. It is
// shared (by pointer) between an Input and its WithSeed copies, and all
// access is serialized by mu: the first caller computes, everyone else
// reads the memoized slices, which are treated as immutable thereafter.
type inputCaches struct {
	mu                 sync.Mutex
	cleaned1, cleaned2 []string
	embedder           *vector.Embedder
	embCache           map[bool][2][]vector.Vec
}

// NewInput materializes the schema views of the task.
func NewInput(task *entity.Task, setting entity.SchemaSetting) *Input {
	v1, v2 := entity.TaskViews(task, setting)
	return &Input{Task: task, Setting: setting, V1: v1, V2: v2, embDim: vector.Dim, caches: &inputCaches{}}
}

// NewInputDim is NewInput with a custom embedding dimensionality, used by
// tests to keep dense methods fast.
func NewInputDim(task *entity.Task, setting entity.SchemaSetting, dim int) *Input {
	in := NewInput(task, setting)
	in.embDim = dim
	return in
}

// Fresh returns an input over the same task and setting with all caches
// dropped, so a subsequent run measures true end-to-end time.
func (in *Input) Fresh() *Input {
	out := NewInputDim(in.Task, in.Setting, in.embDim)
	out.Seed = in.Seed
	return out
}

// WithSeed returns a copy of the input with the given seed. The copy
// shares the task, views and derived-data caches with the receiver, so
// stochastic repetitions reuse cleaned texts and embeddings; unlike
// mutating Seed in place, it is safe while other goroutines use the
// original.
func (in *Input) WithSeed(seed uint64) *Input {
	out := *in
	out.Seed = seed
	return &out
}

// Texts returns the per-entity texts of both collections, cleaned
// (stop-word removal + stemming) or raw. Safe for concurrent use.
func (in *Input) Texts(clean bool) (t1, t2 []string) {
	if !clean {
		return in.V1.Texts(), in.V2.Texts()
	}
	c := in.caches
	c.mu.Lock()
	defer c.mu.Unlock()
	return in.cleanedLocked()
}

// cleanedLocked returns the cleaned texts, computing them on first use.
// Callers must hold caches.mu.
func (in *Input) cleanedLocked() (t1, t2 []string) {
	c := in.caches
	if c.cleaned1 == nil {
		c.cleaned1 = text.CleanAll(in.V1.Texts())
		c.cleaned2 = text.CleanAll(in.V2.Texts())
	}
	return c.cleaned1, c.cleaned2
}

// Embeddings returns the tuple embeddings of both collections over raw or
// cleaned texts, cached per cleanliness. Safe for concurrent use.
func (in *Input) Embeddings(clean bool) (v1, v2 []vector.Vec) {
	c := in.caches
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.embCache == nil {
		c.embCache = map[bool][2][]vector.Vec{}
	}
	if cached, ok := c.embCache[clean]; ok {
		return cached[0], cached[1]
	}
	if c.embedder == nil {
		c.embedder = vector.NewEmbedder(in.embDim)
	}
	t1, t2 := in.V1.Texts(), in.V2.Texts()
	if clean {
		t1, t2 = in.cleanedLocked()
	}
	e1 := c.embedder.Texts(t1)
	e2 := c.embedder.Texts(t2)
	c.embCache[clean] = [2][]vector.Vec{e1, e2}
	return e1, e2
}

// Metrics are the effectiveness measures of Section III computed over a
// candidate set.
type Metrics struct {
	// PC is Pair Completeness (recall): detected duplicates over all
	// groundtruth duplicates.
	PC float64
	// PQ is Pairs Quality (precision): detected duplicates over all
	// candidates.
	PQ float64
	// Candidates is the number of distinct candidate pairs |C| (Table XI).
	Candidates int
	// Matches is the number of groundtruth duplicates among them.
	Matches int
}

// Evaluate computes PC and PQ of a candidate set against the groundtruth.
// Duplicate pairs in the input are counted once.
func Evaluate(pairs []entity.Pair, truth *entity.GroundTruth) Metrics {
	seen := make(map[entity.Pair]struct{}, len(pairs))
	matches := 0
	for _, p := range pairs {
		if _, ok := seen[p]; ok {
			continue
		}
		seen[p] = struct{}{}
		if truth.Contains(p) {
			matches++
		}
	}
	m := Metrics{Candidates: len(seen), Matches: matches}
	if truth.Size() > 0 {
		m.PC = float64(matches) / float64(truth.Size())
	}
	if len(seen) > 0 {
		m.PQ = float64(matches) / float64(len(seen))
	}
	return m
}

// stopwatch measures consecutive phases.
type stopwatch struct {
	start time.Time
	last  time.Time
}

func newStopwatch() *stopwatch {
	now := time.Now()
	return &stopwatch{start: now, last: now}
}

// lap returns the time since the previous lap (or start).
func (s *stopwatch) lap() time.Duration {
	now := time.Now()
	d := now.Sub(s.last)
	s.last = now
	return d
}

// total returns the time since the stopwatch was created.
func (s *stopwatch) total() time.Duration { return time.Since(s.start) }
