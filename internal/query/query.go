// Package query is the hand-rolled predicate language of the serving
// layer: a lexer, a recursive-descent parser and a typed AST, no
// generated code. One query string combines an attribute predicate
// tree with result modifiers:
//
//	city = "berlin" AND (name ^= "jo" OR name ~ "j.*n") AND NOT tier = "spam"
//	score >= 0.35 top 50 explain
//
// Clauses test the stored attributes of a candidate entity:
//
//	field =  "v"   any attribute named field equals v (case-folded)
//	field != "v"   no attribute named field equals v
//	field ^= "v"   any attribute named field starts with v (case-folded)
//	field ~  "re"  any attribute named field matches the RE2 regexp
//
// combined with AND / OR / NOT and parentheses (keywords are
// case-insensitive; AND binds tighter than OR). Values may be quoted
// strings or bare words. The trailing modifiers are not predicates:
// `score >= t` drops candidates scoring below t, `top N` caps the
// result count after filtering, and `explain` asks the server to
// annotate the response with the normalized plan.
//
// The language is deliberately total: parsing never executes anything,
// regexps are Go's linear-time RE2, and nesting depth is bounded, so a
// query string from an untrusted client is safe to parse and evaluate.
package query

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"erfilter/internal/entity"
)

// MaxLen bounds the accepted query-string length; longer inputs are
// rejected before lexing.
const MaxLen = 64 << 10

// maxDepth bounds parenthesis/NOT nesting so a hostile query cannot
// overflow the parser's stack.
const maxDepth = 128

// Op is a clause comparison operator.
type Op uint8

const (
	OpEq     Op = iota // =   case-folded equality
	OpNe               // !=  negated case-folded equality
	OpPrefix           // ^=  case-folded prefix
	OpRegex            // ~   RE2 regexp match
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpPrefix:
		return "^="
	case OpRegex:
		return "~"
	}
	return "?"
}

// Expr is a predicate over the stored attributes of one entity. All
// implementations are immutable and safe for concurrent Eval.
type Expr interface {
	// Eval reports whether the attributes satisfy the predicate.
	Eval(attrs []entity.Attribute) bool
	// String renders the canonical form (normalized keywords, quoted
	// values, explicit parentheses around OR under AND).
	String() string
}

// And is the conjunction of two predicates.
type And struct{ L, R Expr }

// Eval implements Expr.
func (a *And) Eval(attrs []entity.Attribute) bool { return a.L.Eval(attrs) && a.R.Eval(attrs) }

// String implements Expr.
func (a *And) String() string { return parenOr(a.L) + " AND " + parenOr(a.R) }

// Or is the disjunction of two predicates.
type Or struct{ L, R Expr }

// Eval implements Expr.
func (o *Or) Eval(attrs []entity.Attribute) bool { return o.L.Eval(attrs) || o.R.Eval(attrs) }

// String implements Expr.
func (o *Or) String() string { return o.L.String() + " OR " + o.R.String() }

// Not negates a predicate.
type Not struct{ X Expr }

// Eval implements Expr.
func (n *Not) Eval(attrs []entity.Attribute) bool { return !n.X.Eval(attrs) }

// String implements Expr.
func (n *Not) String() string {
	if _, ok := n.X.(*Clause); ok {
		return "NOT " + n.X.String()
	}
	return "NOT (" + n.X.String() + ")"
}

// parenOr parenthesizes OR nodes under an AND so the canonical form
// re-parses to the same tree.
func parenOr(e Expr) string {
	if _, ok := e.(*Or); ok {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// Clause is one attribute comparison. Equality and prefix fold case
// (ER attribute data is messy); the regexp operator matches the value
// as-is — prepend (?i) for a case-insensitive pattern.
type Clause struct {
	Field string
	Op    Op
	Value string
	re    *regexp.Regexp // compiled at parse time for OpRegex
}

// Eval implements Expr.
func (c *Clause) Eval(attrs []entity.Attribute) bool {
	for i := range attrs {
		if attrs[i].Name != c.Field {
			continue
		}
		v := attrs[i].Value
		switch c.Op {
		case OpEq:
			if strings.EqualFold(v, c.Value) {
				return true
			}
		case OpNe:
			if strings.EqualFold(v, c.Value) {
				return false
			}
		case OpPrefix:
			if len(v) >= len(c.Value) && strings.EqualFold(v[:len(c.Value)], c.Value) {
				return true
			}
		case OpRegex:
			if c.re.MatchString(v) {
				return true
			}
		}
	}
	// != is universally quantified: no attribute of that name equalled
	// the value (an entity without the attribute passes). The others are
	// existential and found no witness.
	return c.Op == OpNe
}

// String implements Expr.
func (c *Clause) String() string {
	return c.Field + " " + c.Op.String() + " " + strconv.Quote(c.Value)
}

// Query is one parsed query: an optional predicate tree plus the
// result modifiers. The zero Where matches every entity.
type Query struct {
	Where    Expr     // nil = no attribute predicate
	MinScore *float64 // nil = no score bound
	Top      int      // 0 = no result cap
	Explain  bool
}

// Match reports whether the attributes satisfy the Where predicate
// (vacuously true when there is none). The score bound and top cap are
// the caller's to apply — they act on candidates, not attributes.
func (q *Query) Match(attrs []entity.Attribute) bool {
	return q.Where == nil || q.Where.Eval(attrs)
}

// String renders the canonical form of the whole query; Parse of the
// result yields an equivalent query.
func (q *Query) String() string {
	var parts []string
	if q.Where != nil {
		parts = append(parts, q.Where.String())
	}
	if q.MinScore != nil {
		parts = append(parts, "score >= "+strconv.FormatFloat(*q.MinScore, 'g', -1, 64))
	}
	if q.Top > 0 {
		parts = append(parts, "top "+strconv.Itoa(q.Top))
	}
	if q.Explain {
		parts = append(parts, "explain")
	}
	return strings.Join(parts, " ")
}

// Parse parses one query string. An empty (or all-space) input is
// valid and yields the match-everything query.
func Parse(src string) (*Query, error) {
	if len(src) > MaxLen {
		return nil, fmt.Errorf("query: %d bytes exceeds the %d-byte cap", len(src), MaxLen)
	}
	p := &parser{lex: lexer{src: src}}
	if err := p.next(); err != nil {
		return nil, err
	}
	q := &Query{}
	// The predicate tree is optional: a query may be modifiers only
	// ("score >= 0.5 top 10"), or entirely empty.
	if p.tok.kind != tEOF && !p.atModifier() {
		e, err := p.parseOr(0)
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if err := p.parseModifiers(q); err != nil {
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, p.errf("unexpected %s after end of query", p.tok)
	}
	return q, nil
}

// --- lexer ---

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tString
	tNumber
	tLParen
	tRParen
	tOp  // = != ^= ~
	tGte // >=
)

type token struct {
	kind tokKind
	text string // ident name, unquoted string value, number literal, op
	pos  int    // byte offset in src
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of query"
	case tString:
		return strconv.Quote(t.text)
	default:
		return strconv.Quote(t.text)
	}
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("query: %s at offset %d", fmt.Sprintf(format, args...), pos)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdent(c byte) bool {
	return isIdentStart(c) || c == '.' || c == '-' || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) lex() (token, error) {
	for l.pos < len(l.src) {
		if c := l.src[l.pos]; c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tRParen, text: ")", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tOp, text: "=", pos: start}, nil
	case c == '~':
		l.pos++
		return token{kind: tOp, text: "~", pos: start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tOp, text: "!=", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected %q (did you mean !=)", "!")
	case c == '^':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tOp, text: "^=", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected %q (did you mean ^=)", "^")
	case c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tGte, text: ">=", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected %q (only >= is supported)", ">")
	case c == '"':
		return l.lexString()
	case isDigit(c) || c == '-' || c == '+':
		return l.lexNumber()
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdent(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tIdent, text: l.src[start:l.pos], pos: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", string(c))
}

// lexString scans a double-quoted string literal. The scan only finds
// the closing quote (honoring backslash escapes); decoding is delegated
// to strconv.Unquote so the accepted escapes are exactly the Go string
// escapes strconv.Quote emits — which makes Query.String a true inverse
// even for control bytes and non-ASCII values.
func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '"':
			l.pos++
			raw := l.src[start:l.pos]
			text, err := strconv.Unquote(raw)
			if err != nil {
				return token{}, l.errf(start, "bad string literal %s", raw)
			}
			return token{kind: tString, text: text, pos: start}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf(l.pos, "unterminated escape")
			}
			l.pos += 2
		case '\n':
			return token{}, l.errf(start, "unterminated string")
		default:
			l.pos++
		}
	}
	return token{}, l.errf(start, "unterminated string")
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if c := l.src[l.pos]; c == '-' || c == '+' {
		l.pos++
	}
	digits := 0
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		if isDigit(l.src[l.pos]) {
			digits++
		}
		if c := l.src[l.pos]; c == 'e' || c == 'E' {
			// allow a signed exponent
			if l.pos+1 < len(l.src) && (l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+') {
				l.pos++
			}
		}
		l.pos++
	}
	if digits == 0 {
		return token{}, l.errf(start, "malformed number %q", l.src[start:l.pos])
	}
	return token{kind: tNumber, text: l.src[start:l.pos], pos: start}, nil
}

// --- parser ---

type parser struct {
	lex lexer
	tok token
}

func (p *parser) next() error {
	t, err := p.lex.lex()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return p.lex.errf(p.tok.pos, format, args...)
}

// keyword reports whether the current token is the (case-insensitive)
// keyword.
func (p *parser) keyword(kw string) bool {
	return p.tok.kind == tIdent && strings.EqualFold(p.tok.text, kw)
}

// atModifier reports whether the current token opens the modifier tail
// (score / top / explain).
func (p *parser) atModifier() bool {
	return p.keyword("score") || p.keyword("top") || p.keyword("explain")
}

func (p *parser) parseOr(depth int) (Expr, error) {
	left, err := p.parseAnd(depth)
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd(depth)
		if err != nil {
			return nil, err
		}
		left = &Or{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd(depth int) (Expr, error) {
	left, err := p.parseUnary(depth)
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary(depth)
		if err != nil {
			return nil, err
		}
		left = &And{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary(depth int) (Expr, error) {
	if depth > maxDepth {
		return nil, p.errf("query nests deeper than %d levels", maxDepth)
	}
	switch {
	case p.keyword("not"):
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary(depth + 1)
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	case p.tok.kind == tLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseOr(depth + 1)
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tRParen {
			return nil, p.errf("expected ) but found %s", p.tok)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseClause()
}

// reserved are the keywords that cannot name an attribute field.
func reserved(name string) bool {
	switch strings.ToLower(name) {
	case "and", "or", "not", "score", "top", "explain":
		return true
	}
	return false
}

func (p *parser) parseClause() (Expr, error) {
	if p.tok.kind != tIdent {
		return nil, p.errf("expected an attribute name but found %s", p.tok)
	}
	if reserved(p.tok.text) {
		return nil, p.errf("%q is a keyword, not an attribute name", p.tok.text)
	}
	field := p.tok.text
	if err := p.next(); err != nil {
		return nil, err
	}
	if p.tok.kind != tOp {
		return nil, p.errf("expected an operator (= != ^= ~) after %q but found %s", field, p.tok)
	}
	var op Op
	switch p.tok.text {
	case "=":
		op = OpEq
	case "!=":
		op = OpNe
	case "^=":
		op = OpPrefix
	case "~":
		op = OpRegex
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	var value string
	switch p.tok.kind {
	case tString, tNumber:
		value = p.tok.text
	case tIdent:
		// Bare-word values are a convenience (city = berlin); keywords
		// must be quoted to be literal.
		if reserved(p.tok.text) {
			return nil, p.errf("%q is a keyword; quote it to use it as a value", p.tok.text)
		}
		value = p.tok.text
	default:
		return nil, p.errf("expected a value after %q %s but found %s", field, op, p.tok)
	}
	c := &Clause{Field: field, Op: op, Value: value}
	if op == OpRegex {
		re, err := regexp.Compile(value)
		if err != nil {
			return nil, p.errf("bad regexp %q: %v", value, err)
		}
		c.re = re
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	return c, nil
}

// parseModifiers consumes the trailing modifier list in any order;
// each may appear at most once.
func (p *parser) parseModifiers(q *Query) error {
	for {
		switch {
		case p.keyword("score"):
			if q.MinScore != nil {
				return p.errf("duplicate score bound")
			}
			if err := p.next(); err != nil {
				return err
			}
			if p.tok.kind != tGte {
				return p.errf("expected >= after score but found %s", p.tok)
			}
			if err := p.next(); err != nil {
				return err
			}
			if p.tok.kind != tNumber {
				return p.errf("expected a number after score >= but found %s", p.tok)
			}
			v, err := strconv.ParseFloat(p.tok.text, 64)
			if err != nil {
				return p.errf("bad score bound %q", p.tok.text)
			}
			q.MinScore = &v
			if err := p.next(); err != nil {
				return err
			}
		case p.keyword("top"):
			if q.Top != 0 {
				return p.errf("duplicate top cap")
			}
			if err := p.next(); err != nil {
				return err
			}
			if p.tok.kind != tNumber {
				return p.errf("expected a count after top but found %s", p.tok)
			}
			n, err := strconv.Atoi(p.tok.text)
			if err != nil || n <= 0 {
				return p.errf("top must be a positive integer, got %q", p.tok.text)
			}
			q.Top = n
			if err := p.next(); err != nil {
				return err
			}
		case p.keyword("explain"):
			if q.Explain {
				return p.errf("duplicate explain")
			}
			q.Explain = true
			if err := p.next(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}
