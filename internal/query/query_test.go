package query

import (
	"strings"
	"testing"

	"erfilter/internal/entity"
)

func attrs(pairs ...string) []entity.Attribute {
	out := make([]entity.Attribute, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, entity.Attribute{Name: pairs[i], Value: pairs[i+1]})
	}
	return out
}

// TestParseCorpus walks a corpus of valid queries and pins the parsed
// shape through the canonical String rendering.
func TestParseCorpus(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical rendering
	}{
		{``, ``},
		{`   `, ``},
		{`city = berlin`, `city = "berlin"`},
		{`city = "berlin"`, `city = "berlin"`},
		{`CITY != "Berlin"`, `CITY != "Berlin"`},
		{`name ^= "jo"`, `name ^= "jo"`},
		{`name ~ "j.*n"`, `name ~ "j.*n"`},
		{`zip = 10115`, `zip = "10115"`},
		{`a = x AND b = y`, `a = "x" AND b = "y"`},
		{`a = x and b = y or c = z`, `a = "x" AND b = "y" OR c = "z"`},
		{`a = x AND (b = y OR c = z)`, `a = "x" AND (b = "y" OR c = "z")`},
		{`NOT a = x`, `NOT a = "x"`},
		{`not (a = x or b = y)`, `NOT (a = "x" OR b = "y")`},
		{`score >= 0.35`, `score >= 0.35`},
		{`score >= -1.5e2`, `score >= -150`},
		{`top 50`, `top 50`},
		{`explain`, `explain`},
		{`a = x score >= 0.5 top 10 explain`, `a = "x" score >= 0.5 top 10 explain`},
		{`a = x explain top 10 score >= 0.5`, `a = "x" score >= 0.5 top 10 explain`},
		{`a = "say \"hi\"\n"`, `a = "say \"hi\"\n"`},
		{`a.b-c = x`, `a.b-c = "x"`},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := q.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
		// The canonical form re-parses to the same canonical form.
		q2, err := Parse(q.String())
		if err != nil {
			t.Errorf("reparse of %q: %v", q.String(), err)
			continue
		}
		if q2.String() != q.String() {
			t.Errorf("canonical form is not a fixed point: %q -> %q", q.String(), q2.String())
		}
	}
}

// TestParseErrors pins the rejection of malformed queries.
func TestParseErrors(t *testing.T) {
	cases := []string{
		`city`,
		`city =`,
		`= berlin`,
		`city == berlin`,
		`city > berlin`,
		`city ! berlin`,
		`city ^ berlin`,
		`(a = x`,
		`a = x)`,
		`a = x AND`,
		`OR a = x`,
		`NOT`,
		`a = "unterminated`,
		`a = "bad \q escape"`,
		`a ~ "(unclosed"`,
		`score > 0.5`,
		`score >= abc`,
		`top 0`,
		`top -3`,
		`top 1.5`,
		`top 10 top 20`,
		`explain explain`,
		`score >= 1 score >= 2`,
		`and = x`,
		`a = and`,
		`a = x garbage`,
		`a = x AND score`,
		strings.Repeat("(", 200) + "a = x" + strings.Repeat(")", 200),
		"a = x \x00",
	}
	for _, src := range cases {
		if q, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted as %q, want error", src, q.String())
		}
	}
	if _, err := Parse(strings.Repeat("x", MaxLen+1)); err == nil {
		t.Error("Parse accepted an over-length query")
	}
}

// TestEval pins clause and boolean semantics against a small entity.
func TestEval(t *testing.T) {
	e := attrs("city", "Berlin", "name", "John Smith", "tag", "a", "tag", "b")
	cases := []struct {
		src  string
		want bool
	}{
		{`city = berlin`, true}, // equality folds case
		{`city = "Berlin"`, true},
		{`city = munich`, false},
		{`city != munich`, true},
		{`city != berlin`, false},
		{`name ^= "JOHN"`, true}, // prefix folds case
		{`name ^= "smith"`, false},
		{`name ~ "Smith$"`, true},
		{`name ~ "smith$"`, false}, // regexp is case-sensitive as written
		{`name ~ "(?i)smith$"`, true},
		{`tag = a`, true}, // any attribute of the name may witness
		{`tag = b`, true},
		{`tag = c`, false},
		{`tag != a`, false}, // != is universally quantified
		{`missing = x`, false},
		{`missing != x`, true}, // an absent attribute passes !=
		{`NOT missing = x`, true},
		{`city = berlin AND name ^= john`, true},
		{`city = munich OR name ^= john`, true},
		{`city = munich AND name ^= john OR tag = a`, true}, // AND binds tighter
		{`city = munich AND (name ^= john OR tag = a)`, false},
		{`NOT (city = berlin AND tag = a)`, false},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := q.Match(e); got != c.want {
			t.Errorf("%q on %v = %v, want %v", c.src, e, got, c.want)
		}
	}
	// The empty query matches everything, including no attributes.
	q, err := Parse("top 5")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Match(nil) || !q.Match(e) {
		t.Error("modifier-only query must match every entity")
	}
	if q.Top != 5 || q.MinScore != nil || q.Explain {
		t.Errorf("modifiers parsed wrong: %+v", q)
	}
}

// TestModifierValues pins the numeric modifier fields.
func TestModifierValues(t *testing.T) {
	q, err := Parse(`score >= 0.25 top 7 explain`)
	if err != nil {
		t.Fatal(err)
	}
	if q.MinScore == nil || *q.MinScore != 0.25 {
		t.Errorf("MinScore = %v, want 0.25", q.MinScore)
	}
	if q.Top != 7 || !q.Explain || q.Where != nil {
		t.Errorf("parsed %+v", q)
	}
}

// FuzzParseQuery feeds arbitrary strings through the parser: it must
// never panic, and any accepted query must render to a canonical form
// that re-parses to the same canonical form.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		``,
		`city = berlin`,
		`a = x AND (b ^= "y" OR NOT c ~ "z.*") score >= 0.5 top 10 explain`,
		`a = "\"\\\n\t"`,
		`score >= -1e9`,
		strings.Repeat("(", 40) + "a = x" + strings.Repeat(")", 40),
		`top 10 score >= 0.1`,
		`a != b or not (c = d)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		canon := q.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, src, err)
		}
		if got := q2.String(); got != canon {
			t.Fatalf("canonical form is unstable: %q -> %q", canon, got)
		}
		// Evaluation must be total on arbitrary attribute sets.
		q.Match(nil)
		q.Match([]entity.Attribute{{Name: "a", Value: src}})
	})
}
