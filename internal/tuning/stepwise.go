package tuning

import (
	"erfilter/internal/blocking"
	"erfilter/internal/cleaning"
	"erfilter/internal/core"
	"erfilter/internal/metablocking"
	"erfilter/internal/parallel"
)

// TuneBlockingStepwise implements the *step-by-step* configuration
// optimization of the prior blocking study the paper improves upon
// (Section II): first block building is optimized in isolation (judged
// through Comparison Propagation), then Block Purging and Block Filtering
// are tuned on the frozen builder, and finally comparison cleaning is
// tuned on the frozen blocks. The paper argues — citing its predecessors —
// that this gets stuck in local maxima per step and explores far fewer
// combinations than the holistic TuneBlocking; the ablation reproduces
// that comparison.
func TuneBlockingStepwise(in *core.Input, space BlockingSpace, target float64) *Result {
	truth := in.Task.Truth
	evaluated := 0

	// better reports whether (m1) beats (m0) under Problem-1 semantics.
	better := func(m1, m0 core.Metrics, had bool) bool {
		if !had {
			return true
		}
		s1, s0 := m1.PC >= target, m0.PC >= target
		switch {
		case s1 && !s0:
			return true
		case !s1 && s0:
			return false
		case s1 && s0:
			return m1.PQ > m0.PQ
		default:
			return m1.PC > m0.PC
		}
	}

	// Step 1: pick the builder in isolation. The builder evaluations are
	// independent, so they fan out on the worker pool; the winner is
	// selected by scanning the results in canonical grid order, exactly
	// like the sequential loop.
	type builderEval struct {
		blocks *blocking.Collection
		m      core.Metrics
	}
	evals, perr := parallel.Map(space.Workers, len(space.Builders), func(i int) (builderEval, error) {
		blocks := blocking.Build(in.V1, in.V2, space.Builders[i])
		return builderEval{blocks: blocks, m: core.Evaluate(metablocking.Propagate(blocks), truth)}, nil
	})
	if perr != nil {
		panic(perr) // only a recovered worker panic can land here
	}
	var bestBuilder blocking.Builder
	var bestBlocks *blocking.Collection
	var bestM core.Metrics
	have := false
	for i, ev := range evals {
		evaluated++
		if better(ev.m, bestM, have) {
			bestBuilder, bestBlocks, bestM, have = space.Builders[i], ev.blocks, ev.m, true
		}
	}
	if !have {
		return &Result{Method: space.Label + "-stepwise"}
	}

	// Step 2: tune block cleaning on the frozen builder.
	purgeOptions := []bool{false, true}
	ratios := space.FilterRatios
	if space.Proactive {
		purgeOptions = []bool{false}
		ratios = []float64{1}
	}
	bestPurge, bestRatio := false, 1.0
	cleanedBlocks := bestBlocks
	bestM2 := bestM
	have2 := false
	for _, purge := range purgeOptions {
		base := bestBlocks
		if purge {
			base = cleaning.Purge(base)
		}
		for _, r := range ratios {
			blocks := base
			if r < 1 {
				blocks = cleaning.Filter(base, r)
			}
			m := core.Evaluate(metablocking.Propagate(blocks), truth)
			evaluated++
			if better(m, bestM2, have2) {
				bestPurge, bestRatio, cleanedBlocks, bestM2, have2 = purge, r, blocks, m, true
			}
			if m.PC < target {
				break // smaller ratios only lose more recall
			}
		}
	}

	// Step 3: tune comparison cleaning on the frozen blocks. The
	// cleanings are independent reads of the shared graph: evaluate them
	// concurrently, then offer in grid order.
	tr := newTracker(space.Label+"-stepwise", target)
	g := metablocking.BuildGraph(cleanedBlocks)
	ub := core.Evaluate(g.Pairs, truth)
	tp := cleanedBlocks.TotalPlacements()
	metrics, perr2 := parallel.Map(space.Workers, len(space.Cleanings), func(ci int) (core.Metrics, error) {
		cl := space.Cleanings[ci]
		if cl.Propagation {
			return ub, nil
		}
		return core.Evaluate(metablocking.Prune(g, cl.Scheme, cl.Algorithm, tp), truth), nil
	})
	if perr2 != nil {
		panic(perr2)
	}
	for ci, m := range metrics {
		cl := space.Cleanings[ci]
		tr.offer(m, workflowFilter(space.Label, bestBuilder, bestPurge, bestRatio, cl),
			blockConfig(bestBuilder, bestPurge, bestRatio, cl))
	}
	r := tr.result()
	r.Evaluated += evaluated
	return r
}
