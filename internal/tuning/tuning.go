// Package tuning implements the configuration optimization of Problem 1:
// given a task, a filtering method's configuration space (Tables III, IV
// and V) and a recall target τ, it grid-searches the parameters that
// maximize Pairs Quality subject to Pair Completeness ≥ τ, using the
// paper's early-termination rules (blocking: stop shrinking blocks once
// the recall upper bound falls below τ; ε-Join: descend thresholds;
// cardinality methods: ascend K and stop at the first configuration that
// reaches τ).
package tuning

import (
	"fmt"
	"sort"
	"strings"

	"erfilter/internal/core"
)

// DefaultTarget is the paper's recall threshold τ = 0.9 on PC.
const DefaultTarget = 0.9

// Result is the outcome of tuning one method on one input.
type Result struct {
	// Method is the family label, e.g. "SBW" or "kNN-Join".
	Method string
	// Config documents the winning parameter values (Tables VIII–X).
	Config map[string]string
	// Filter rebuilds the winning configuration (nil when no
	// configuration was evaluated at all).
	Filter core.Filter
	// Metrics of the winning configuration.
	Metrics core.Metrics
	// Satisfied reports whether PC >= τ was achieved; when false, the
	// result is the configuration with the highest PC instead (its PQ is
	// reported in red in the paper's tables).
	Satisfied bool
	// Evaluated counts the examined configurations.
	Evaluated int
}

// ConfigString renders the config map deterministically for reports.
func (r *Result) ConfigString() string {
	keys := make([]string, 0, len(r.Config))
	for k := range r.Config {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, r.Config[k]))
	}
	return strings.Join(parts, " ")
}

// tracker accumulates the best configuration under Problem 1 semantics.
// A tracker is not safe for concurrent use; parallel grid searches give
// every independent branch its own tracker and merge them afterwards in
// canonical branch order (see merge).
type tracker struct {
	target  float64
	best    Result
	offered bool
}

func newTracker(method string, target float64) *tracker {
	return &tracker{target: target, best: Result{Method: method, Metrics: core.Metrics{PC: -1}}}
}

// offer considers one evaluated configuration.
func (t *tracker) offer(m core.Metrics, f core.Filter, config map[string]string) {
	t.best.Evaluated++
	t.consider(m, f, config)
}

// consider applies the Problem-1 comparison without counting an
// evaluation. All comparisons are strict, so on ties the incumbent — the
// configuration offered first in canonical grid order — wins; this is
// what makes the parallel reduction reproduce the sequential scan
// exactly.
func (t *tracker) consider(m core.Metrics, f core.Filter, config map[string]string) {
	satisfies := m.PC >= t.target
	better := false
	switch {
	case !t.offered:
		better = true
	case satisfies && !t.best.Satisfied:
		better = true
	case satisfies && t.best.Satisfied:
		better = m.PQ > t.best.Metrics.PQ
	case !satisfies && !t.best.Satisfied:
		// Track the highest-recall configuration as the fallback,
		// breaking ties by precision.
		better = m.PC > t.best.Metrics.PC ||
			(m.PC == t.best.Metrics.PC && m.PQ > t.best.Metrics.PQ)
	}
	if better {
		t.offered = true
		evaluated := t.best.Evaluated
		t.best = Result{
			Method:    t.best.Method,
			Config:    config,
			Filter:    f,
			Metrics:   m,
			Satisfied: satisfies,
			Evaluated: evaluated,
		}
	}
}

// addEvaluated counts configurations that were covered without an
// explicit evaluation (early-terminated grid suffixes).
func (t *tracker) addEvaluated(n int) { t.best.Evaluated += n }

// merge folds a branch tracker into the receiver: evaluation counts
// accumulate and the branch's winner competes under the same Problem-1
// comparison. Merging branch trackers in canonical branch order yields
// exactly the result of the sequential scan, because each branch winner
// is the first optimum within its branch and consider breaks ties in
// favor of the earlier (lower-index) branch.
func (t *tracker) merge(o *tracker) {
	t.best.Evaluated += o.best.Evaluated
	if !o.offered {
		return
	}
	t.consider(o.best.Metrics, o.best.Filter, o.best.Config)
}

func (t *tracker) result() *Result {
	r := t.best
	return &r
}

func fmtBool(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}
