package tuning

import (
	"fmt"
	"math"

	"erfilter/internal/core"
	"erfilter/internal/entity"
	"erfilter/internal/parallel"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

// SparseSpace is the configuration space of the sparse NN methods
// (Table IV).
type SparseSpace struct {
	CleanOptions []bool
	Measures     []sparse.Measure
	Models       []text.Model
	// MaxK is the largest kNN-Join cardinality threshold examined.
	MaxK int
	// ThresholdStep is the ε-Join grid step (0.01 in the paper).
	ThresholdStep float64
	// Workers bounds the grid-search worker pool (<=0 = NumCPU,
	// 1 = sequential). Results are identical at any worker count.
	Workers int
}

// DefaultSparseSpace returns the Table IV grid; full=false thins the
// representation-model axis.
func DefaultSparseSpace(full bool) SparseSpace {
	s := SparseSpace{
		CleanOptions:  []bool{false, true},
		Measures:      sparse.Measures(),
		MaxK:          100,
		ThresholdStep: 0.01,
	}
	if full {
		s.Models = text.Models()
	} else {
		for _, name := range []string{"T1G", "C2G", "C3G", "C3GM", "C4G", "C5GM"} {
			m, _ := text.ParseModel(name)
			s.Models = append(s.Models, m)
		}
		s.MaxK = 30
	}
	return s
}

// TuneEpsJoin grid-searches the ε-Join. For every (CL, SM, RM) cell the
// similarity of every overlapping pair is computed once and binned on the
// threshold grid, so the entire threshold axis is swept in one pass; the
// winning threshold is the largest grid value whose PC still reaches the
// target (descending thresholds only add candidates, lowering PQ).
func TuneEpsJoin(in *core.Input, space SparseSpace, target float64) *Result {
	truth := in.Task.Truth
	step := space.ThresholdStep
	if step <= 0 {
		step = 0.01
	}
	bins := int(math.Round(1/step)) + 1

	// Every (CL, RM) pair is an independent branch sharing one corpus and
	// index; the measure loop and threshold descent stay inside the
	// branch (the descent early-terminates on the target).
	branches := sparseBranches(space, false)
	trackers := tuneBranches(space.Workers, len(branches), "eps-join", target, func(tr *tracker, bi int) {
		clean, model := branches[bi].clean, branches[bi].model
		t1, t2 := in.Texts(clean)
		corpus := sparse.BuildCorpus(t1, t2, model)
		idx := sparse.NewIndex(corpus.Sets1, corpus.NumTokens)
		for _, measure := range space.Measures {
			cand := make([]int, bins)
			match := make([]int, bins)
			for e2, q := range corpus.Sets2 {
				qs := len(q)
				idx.Overlaps(q, func(e1 int32, overlap int) {
					sim := measure.Sim(overlap, qs, idx.Size(e1))
					if sim <= 0 {
						return
					}
					b := int(sim / step)
					if b >= bins {
						b = bins - 1
					}
					cand[b]++
					if truth.Contains(pair(e1, int32(e2))) {
						match[b]++
					}
				})
			}
			// Suffix sums: counts of pairs with sim >= b*step.
			for b := bins - 2; b >= 0; b-- {
				cand[b] += cand[b+1]
				match[b] += match[b+1]
			}
			// Descend thresholds from 1.0; stop at the first (largest)
			// threshold reaching the target.
			for b := bins - 1; b >= 0; b-- {
				m := metricsFromCounts(cand[b], match[b], truth.Size())
				t := float64(b) * step
				f := &core.EpsJoinFilter{Clean: clean, Model: model, Measure: measure, Threshold: t}
				cfg := map[string]string{
					"CL": fmtBool(clean), "RM": model.String(),
					"SM": measure.String(), "t": fmt.Sprintf("%.2f", t),
				}
				tr.offer(m, f, cfg)
				if m.PC >= target {
					break
				}
			}
		}
	})
	return mergeTrackers("eps-join", target, trackers)
}

// sparseBranch is one independent (CL, RVS, RM) grid branch of the sparse
// tuners.
type sparseBranch struct {
	clean, reverse bool
	model          text.Model
}

// sparseBranches enumerates the independent branches of a sparse space in
// canonical grid order; the RVS axis participates only for the kNN-Join.
func sparseBranches(space SparseSpace, withReverse bool) []sparseBranch {
	reverses := []bool{false}
	if withReverse {
		reverses = []bool{false, true}
	}
	var out []sparseBranch
	for _, clean := range space.CleanOptions {
		for _, reverse := range reverses {
			for _, model := range space.Models {
				out = append(out, sparseBranch{clean: clean, reverse: reverse, model: model})
			}
		}
	}
	return out
}

// tuneBranches runs one tracker-feeding closure per branch on the worker
// pool and returns the branch trackers in canonical order.
func tuneBranches(workers, n int, method string, target float64, fn func(tr *tracker, bi int)) []*tracker {
	trackers := make([]*tracker, n)
	err := parallel.ForEach(workers, n, func(bi int) error {
		tr := newTracker(method, target)
		fn(tr, bi)
		trackers[bi] = tr
		return nil
	})
	if err != nil {
		// Branch closures are infallible; only a recovered panic lands
		// here. Re-raise it like the sequential loop would.
		panic(err)
	}
	return trackers
}

// mergeTrackers reduces branch trackers in canonical order.
func mergeTrackers(method string, target float64, trackers []*tracker) *Result {
	final := newTracker(method, target)
	for _, tr := range trackers {
		final.merge(tr)
	}
	return final.result()
}

// TuneKNNJoin grid-searches the kNN-Join. For every (CL, RVS, SM, RM) cell
// the per-query ranked neighbor lists are computed once up to MaxK
// distinct similarity values; the K axis is then swept ascending and, per
// the paper, terminates at the first K reaching the target recall (larger
// K only adds worse-ranked candidates).
func TuneKNNJoin(in *core.Input, space SparseSpace, target float64) *Result {
	truth := in.Task.Truth
	maxK := space.MaxK
	if maxK <= 0 {
		maxK = 100
	}

	// Every (CL, RVS, RM) triple is an independent branch; the ascending
	// K sweep early-terminates inside its measure loop.
	branches := sparseBranches(space, true)
	trackers := tuneBranches(space.Workers, len(branches), "kNN-Join", target, func(tr *tracker, bi int) {
		clean, reverse, model := branches[bi].clean, branches[bi].reverse, branches[bi].model
		t1, t2 := in.Texts(clean)
		corpus := sparse.BuildCorpus(t1, t2, model)
		indexSets, querySets := corpus.Sets1, corpus.Sets2
		if reverse {
			indexSets, querySets = corpus.Sets2, corpus.Sets1
		}
		idx := sparse.NewIndex(indexSets, corpus.NumTokens)
		for _, measure := range space.Measures {
			// candAt[k]/matchAt[k]: pairs added when the per-query
			// distinct-rank budget grows from k to k+1.
			candAt := make([]int, maxK)
			matchAt := make([]int, maxK)
			for qi, q := range querySets {
				ns := idx.KNNQuery(q, measure, maxK)
				rank := -1
				last := math.Inf(1)
				for _, n := range ns {
					if n.Sim != last {
						rank++
						last = n.Sim
					}
					candAt[rank]++
					p := pair(n.Entity, int32(qi))
					if reverse {
						p = pair(int32(qi), n.Entity)
					}
					if truth.Contains(p) {
						matchAt[rank]++
					}
				}
			}
			cands, matches := 0, 0
			for k := 1; k <= maxK; k++ {
				cands += candAt[k-1]
				matches += matchAt[k-1]
				m := metricsFromCounts(cands, matches, truth.Size())
				f := &core.KNNJoinFilter{Clean: clean, Model: model, Measure: measure, K: k, Reverse: reverse}
				cfg := map[string]string{
					"CL": fmtBool(clean), "RVS": fmtBool(reverse),
					"RM": model.String(), "SM": measure.String(),
					"K": fmt.Sprintf("%d", k),
				}
				tr.offer(m, f, cfg)
				if m.PC >= target {
					break
				}
			}
		}
	})
	return mergeTrackers("kNN-Join", target, trackers)
}

func metricsFromCounts(cands, matches, truthSize int) core.Metrics {
	m := core.Metrics{Candidates: cands, Matches: matches}
	if truthSize > 0 {
		m.PC = float64(matches) / float64(truthSize)
	}
	if cands > 0 {
		m.PQ = float64(matches) / float64(cands)
	}
	return m
}

func pair(l, r int32) entity.Pair {
	return entity.Pair{Left: l, Right: r}
}
