package tuning

import (
	"erfilter/internal/deepblocker"
	"erfilter/internal/vector"
)

// aeEncoder abstracts the trained tuple-embedding module for the
// DeepBlocker tuner.
type aeEncoder interface {
	EncodeAll(samples []vector.Vec) []vector.Vec
}

// aeTrain trains the DeepBlocker autoencoder.
func aeTrain(training []vector.Vec, hidden, epochs int, seed uint64) aeEncoder {
	return deepblocker.Train(training, deepblocker.TrainConfig{
		Hidden: hidden,
		Epochs: epochs,
		Seed:   seed,
	})
}
