package tuning

import (
	"testing"

	"erfilter/internal/core"
	"erfilter/internal/datagen"
	"erfilter/internal/entity"
)

func testInput(t *testing.T) *core.Input {
	t.Helper()
	task := datagen.Generate(datagen.QuickSpec(50, 120, 35, 77))
	in := core.NewInputDim(task, entity.SchemaAgnostic, 48)
	in.Seed = 5
	return in
}

func TestTrackerProblem1Semantics(t *testing.T) {
	tr := newTracker("x", 0.9)
	// Low recall, high precision: becomes the fallback.
	tr.offer(core.Metrics{PC: 0.5, PQ: 0.9}, nil, map[string]string{"a": "1"})
	// Satisfying recall, low precision: supersedes the fallback.
	tr.offer(core.Metrics{PC: 0.92, PQ: 0.1}, nil, map[string]string{"a": "2"})
	// Satisfying recall, better precision: wins.
	tr.offer(core.Metrics{PC: 0.91, PQ: 0.3}, nil, map[string]string{"a": "3"})
	// Higher recall but worse precision: loses under Problem 1.
	tr.offer(core.Metrics{PC: 0.99, PQ: 0.2}, nil, map[string]string{"a": "4"})
	r := tr.result()
	if !r.Satisfied {
		t.Fatal("target should be satisfied")
	}
	if r.Config["a"] != "3" {
		t.Fatalf("winner = %v", r.Config)
	}
	if r.Evaluated != 4 {
		t.Fatalf("evaluated = %d", r.Evaluated)
	}
}

func TestTrackerFallbackHighestRecall(t *testing.T) {
	tr := newTracker("x", 0.9)
	tr.offer(core.Metrics{PC: 0.4, PQ: 0.9}, nil, map[string]string{"a": "1"})
	tr.offer(core.Metrics{PC: 0.7, PQ: 0.1}, nil, map[string]string{"a": "2"})
	r := tr.result()
	if r.Satisfied {
		t.Fatal("target cannot be satisfied")
	}
	if r.Config["a"] != "2" {
		t.Fatalf("fallback should pick highest recall: %v", r.Config)
	}
}

func TestTuneBlockingReachesTarget(t *testing.T) {
	in := testInput(t)
	for _, space := range BlockingSpaces(false)[:2] { // SBW, QBW
		r := TuneBlocking(in, space, DefaultTarget)
		if !r.Satisfied {
			t.Errorf("%s did not reach PC >= 0.9 (best PC %.2f)", space.Label, r.Metrics.PC)
			continue
		}
		if r.Metrics.PQ <= 0 {
			t.Errorf("%s: zero precision", space.Label)
		}
		if r.Filter == nil {
			t.Errorf("%s: no filter returned", space.Label)
			continue
		}
		// The winning filter must reproduce the tuned metrics.
		out, err := r.Filter.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		m := core.Evaluate(out.Pairs, in.Task.Truth)
		if m.PC != r.Metrics.PC || m.Candidates != r.Metrics.Candidates {
			t.Errorf("%s: rerun mismatch: tuned %+v rerun %+v", space.Label, r.Metrics, m)
		}
	}
}

func TestTunedBeatsBaselinePQ(t *testing.T) {
	in := testInput(t)
	sbw := TuneBlocking(in, BlockingSpaces(false)[0], DefaultTarget)
	pbwOut, err := core.NewPBW().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	pbw := core.Evaluate(pbwOut.Pairs, in.Task.Truth)
	if sbw.Satisfied && sbw.Metrics.PQ <= pbw.PQ {
		t.Fatalf("tuned SBW PQ %.3f should beat PBW PQ %.3f", sbw.Metrics.PQ, pbw.PQ)
	}
}

func TestTuneEpsJoin(t *testing.T) {
	in := testInput(t)
	r := TuneEpsJoin(in, DefaultSparseSpace(false), DefaultTarget)
	if !r.Satisfied {
		t.Fatalf("eps-join did not reach target: PC %.2f", r.Metrics.PC)
	}
	// Re-running the winning filter must reproduce the binned metrics.
	out, err := r.Filter.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	m := core.Evaluate(out.Pairs, in.Task.Truth)
	if m.PC < DefaultTarget {
		t.Fatalf("winning eps-join config PC = %.3f on rerun", m.PC)
	}
	if m.Candidates != r.Metrics.Candidates {
		t.Fatalf("rerun candidates %d != tuned %d (config %s)", m.Candidates, r.Metrics.Candidates, r.ConfigString())
	}
}

func TestTuneKNNJoin(t *testing.T) {
	in := testInput(t)
	r := TuneKNNJoin(in, DefaultSparseSpace(false), DefaultTarget)
	if !r.Satisfied {
		t.Fatalf("knn-join did not reach target: PC %.2f", r.Metrics.PC)
	}
	out, err := r.Filter.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	m := core.Evaluate(out.Pairs, in.Task.Truth)
	if m.PC != r.Metrics.PC || m.Candidates != r.Metrics.Candidates {
		t.Fatalf("rerun mismatch: tuned %+v rerun %+v (config %s)", r.Metrics, m, r.ConfigString())
	}
	// kNN-Join's cardinality threshold should be small, as in the paper.
	if r.Config["K"] == "" {
		t.Fatal("missing K in config")
	}
}

func TestKGrid(t *testing.T) {
	g := kGrid(5000)
	if g[0] != 1 || g[99] != 100 {
		t.Fatalf("grid head wrong: %v", g[:3])
	}
	if g[100] != 105 {
		t.Fatalf("grid step-5 region starts at %d", g[100])
	}
	last := g[len(g)-1]
	if last != 5000 {
		t.Fatalf("grid ends at %d", last)
	}
	small := kGrid(7)
	if len(small) != 7 {
		t.Fatalf("capped grid = %v", small)
	}
}

func TestTuneFlatKNN(t *testing.T) {
	in := testInput(t)
	r, err := TuneFlatKNN(in, DefaultDenseSpace(false), DefaultTarget)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Satisfied {
		t.Fatalf("flat kNN did not reach target: PC %.2f", r.Metrics.PC)
	}
	out, err := r.Filter.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	m := core.Evaluate(out.Pairs, in.Task.Truth)
	if m.PC != r.Metrics.PC {
		t.Fatalf("rerun PC %.3f != tuned %.3f", m.PC, r.Metrics.PC)
	}
}

func TestTuneMinHash(t *testing.T) {
	in := testInput(t)
	space := DefaultDenseSpace(false)
	space.Repetitions = 2
	r, err := TuneMinHash(in, space, DefaultTarget)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.PC <= 0 {
		t.Fatal("minhash tuning evaluated nothing")
	}
	if r.Evaluated == 0 {
		t.Fatal("no configurations evaluated")
	}
}

func TestTuneHyperplaneEscalatesProbes(t *testing.T) {
	in := testInput(t)
	space := DefaultDenseSpace(false)
	space.Repetitions = 1
	space.HPTables = []int{8}
	space.HPHashes = []int{10}
	r, err := TuneHyperplane(in, space, DefaultTarget)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.PC < 0.5 {
		t.Fatalf("hyperplane best PC = %.2f", r.Metrics.PC)
	}
}

func TestTunePartitionedAndDeepBlocker(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	in := testInput(t)
	space := DefaultDenseSpace(false)
	space.Repetitions = 1
	space.AEHidden = 16
	space.AEEpochs = 3
	rs, err := TunePartitioned(in, space, DefaultTarget)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Satisfied {
		t.Fatalf("SCANN analog did not reach target: PC %.2f", rs.Metrics.PC)
	}
	rd, err := TuneDeepBlocker(in, space, DefaultTarget)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Metrics.PC < 0.5 {
		t.Fatalf("deepblocker best PC = %.2f", rd.Metrics.PC)
	}
}

func TestConfigString(t *testing.T) {
	r := &Result{Config: map[string]string{"b": "2", "a": "1"}}
	if got := r.ConfigString(); got != "a=1 b=2" {
		t.Fatalf("ConfigString = %q", got)
	}
}

func TestTuneCrossPolytope(t *testing.T) {
	in := testInput(t)
	space := DefaultDenseSpace(false)
	space.Repetitions = 1
	space.CPTables = []int{8}
	space.CPHashes = []int{1}
	space.CPLastDims = []int{16}
	r, err := TuneCrossPolytope(in, space, DefaultTarget)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.PC < 0.5 {
		t.Fatalf("cross-polytope best PC = %.2f", r.Metrics.PC)
	}
	if r.Evaluated == 0 {
		t.Fatal("no configurations evaluated")
	}
}

func TestBlockingSpacesShape(t *testing.T) {
	reduced := BlockingSpaces(false)
	full := BlockingSpaces(true)
	if len(reduced) != 5 || len(full) != 5 {
		t.Fatalf("space count: %d / %d", len(reduced), len(full))
	}
	labels := []string{"SBW", "QBW", "EQBW", "SABW", "ESABW"}
	for i, s := range reduced {
		if s.Label != labels[i] {
			t.Errorf("space %d = %s", i, s.Label)
		}
		if len(s.Builders) == 0 {
			t.Errorf("%s has no builders", s.Label)
		}
		if len(full[i].Builders) < len(s.Builders) {
			t.Errorf("%s full grid smaller than reduced", s.Label)
		}
	}
	// Proactive families skip block cleaning.
	if !reduced[3].Proactive || !reduced[4].Proactive {
		t.Error("suffix-array families must be proactive")
	}
	if reduced[0].Proactive {
		t.Error("SBW must not be proactive")
	}
	// Full cleaning grid: CP + 6 schemes x 7 algorithms = 43.
	if got := len(FullCleaningGrid()); got != 43 {
		t.Errorf("full cleaning grid = %d, want 43", got)
	}
}

func TestDefaultSparseSpaceShape(t *testing.T) {
	full := DefaultSparseSpace(true)
	if len(full.Models) != 10 {
		t.Errorf("full models = %d", len(full.Models))
	}
	reduced := DefaultSparseSpace(false)
	if len(reduced.Models) >= len(full.Models) {
		t.Error("reduced model axis not thinner")
	}
	if full.MaxK != 100 {
		t.Errorf("full MaxK = %d", full.MaxK)
	}
}

func TestDefaultDenseSpaceShape(t *testing.T) {
	full := DefaultDenseSpace(true)
	if full.Repetitions != 10 {
		t.Errorf("full repetitions = %d, want 10 (as in the paper)", full.Repetitions)
	}
	if full.MaxK != 5000 {
		t.Errorf("full MaxK = %d, want 5000", full.MaxK)
	}
	// Full MinHash banding: products of two powers in {128,256,512}.
	for _, br := range full.MHBandRows {
		p := br[0] * br[1]
		if p != 128 && p != 256 && p != 512 {
			t.Errorf("band/row product %d not in {128,256,512}", p)
		}
	}
}

func TestStepwiseNeverBeatsHolistic(t *testing.T) {
	// The paper's Section II claim: holistic tuning explores a superset of
	// the stepwise search space, so its Problem-1 optimum is at least as
	// good. Verify on several seeds.
	for _, seed := range []uint64{77, 78, 79} {
		task := datagen.Generate(datagen.QuickSpec(50, 120, 35, seed))
		in := core.NewInputDim(task, entity.SchemaAgnostic, 48)
		for _, space := range BlockingSpaces(false)[:2] {
			holistic := TuneBlocking(in, space, DefaultTarget)
			stepwise := TuneBlockingStepwise(in, space, DefaultTarget)
			if stepwise.Satisfied && !holistic.Satisfied {
				t.Errorf("seed %d %s: stepwise satisfied but holistic not", seed, space.Label)
			}
			if holistic.Satisfied && stepwise.Satisfied && stepwise.Metrics.PQ > holistic.Metrics.PQ+1e-9 {
				t.Errorf("seed %d %s: stepwise PQ %.4f beat holistic %.4f", seed, space.Label,
					stepwise.Metrics.PQ, holistic.Metrics.PQ)
			}
			if holistic.Evaluated < stepwise.Evaluated {
				t.Errorf("seed %d %s: holistic explored fewer configs (%d < %d)", seed, space.Label,
					holistic.Evaluated, stepwise.Evaluated)
			}
		}
	}
}

func TestStepwiseReturnsRunnableFilter(t *testing.T) {
	in := testInput(t)
	r := TuneBlockingStepwise(in, BlockingSpaces(false)[0], DefaultTarget)
	if r.Filter == nil {
		t.Fatal("no filter")
	}
	out, err := r.Filter.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	m := core.Evaluate(out.Pairs, in.Task.Truth)
	if m.PC != r.Metrics.PC || m.Candidates != r.Metrics.Candidates {
		t.Fatalf("rerun mismatch: %+v vs %+v", m, r.Metrics)
	}
}
