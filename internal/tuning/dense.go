package tuning

import (
	"fmt"
	"math"

	"erfilter/internal/core"
	"erfilter/internal/entity"
	"erfilter/internal/knn"
	"erfilter/internal/parallel"
	"erfilter/internal/vector"
)

// DenseSpace is the configuration space of the dense NN methods (Table V).
type DenseSpace struct {
	CleanOptions []bool
	// Repetitions averages stochastic methods over this many seeds
	// (the paper uses 10).
	Repetitions int

	// MinHash grid.
	MHBandRows [][2]int
	MHShingles []int

	// Hyperplane / Cross-Polytope grids.
	HPTables, HPHashes []int
	CPTables, CPHashes []int
	CPLastDims         []int
	// ProbeLadder is the auto-escalation sequence of multi-probe counts
	// used to reach the target recall (the paper sets probes
	// automatically the same way).
	ProbeLadder []int

	// MaxK bounds the cardinality threshold of FAISS/SCANN/DeepBlocker.
	MaxK int
	// AEHidden/AEEpochs bound the DeepBlocker autoencoder (0 = defaults).
	AEHidden, AEEpochs int

	// Workers bounds the grid-search worker pool (<=0 = NumCPU,
	// 1 = sequential). Results are identical at any worker count.
	Workers int
}

// DefaultDenseSpace returns the Table V grid; full=false thins each axis.
func DefaultDenseSpace(full bool) DenseSpace {
	s := DenseSpace{
		CleanOptions: []bool{false, true},
		Repetitions:  3,
		ProbeLadder:  []int{1, 2, 4, 8, 16, 32, 64, 128},
		MaxK:         1000,
	}
	if full {
		s.Repetitions = 10
		s.MaxK = 5000
		for _, product := range []int{128, 256, 512} {
			for rows := 2; rows <= product/2; rows *= 2 {
				s.MHBandRows = append(s.MHBandRows, [2]int{product / rows, rows})
			}
		}
		s.MHShingles = []int{2, 3, 4, 5}
		s.HPTables = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
		s.HPHashes = []int{4, 8, 12, 16, 20}
		s.CPTables = s.HPTables
		s.CPHashes = []int{1, 2, 3}
		s.CPLastDims = []int{1, 4, 16, 64, 256, 512}
	} else {
		s.MHBandRows = [][2]int{{16, 8}, {32, 8}, {32, 16}, {64, 8}, {16, 16}, {64, 4}, {128, 2}, {128, 4}}
		s.MHShingles = []int{2, 3, 5}
		s.HPTables = []int{4, 8, 16}
		s.HPHashes = []int{6, 10, 14}
		s.CPTables = []int{4, 8, 16}
		s.CPHashes = []int{1, 2}
		s.CPLastDims = []int{16, 64, 256}
		s.MaxK = 300
	}
	return s
}

// averageMetrics evaluates a stochastic filter over the repetitions and
// returns the mean PC/PQ/candidate count, as the paper does for stochastic
// methods.
func averageMetrics(in *core.Input, mk func(seed uint64) core.Filter, reps int) (core.Metrics, error) {
	if reps < 1 {
		reps = 1
	}
	var sum core.Metrics
	for r := 0; r < reps; r++ {
		run := in.WithSeed(in.Seed + uint64(r)*0x9e37)
		out, err := mk(run.Seed).Run(run)
		if err != nil {
			return core.Metrics{}, err
		}
		m := core.Evaluate(out.Pairs, in.Task.Truth)
		sum.PC += m.PC
		sum.PQ += m.PQ
		sum.Candidates += m.Candidates
		sum.Matches += m.Matches
	}
	f := float64(reps)
	return core.Metrics{
		PC: sum.PC / f, PQ: sum.PQ / f,
		Candidates: sum.Candidates / reps, Matches: sum.Matches / reps,
	}, nil
}

// tuneDenseBranches runs one tracker-feeding closure per independent grid
// branch on the worker pool and reduces the branch trackers in canonical
// order. Unlike the sparse helper, branch closures may fail (filters
// return errors); the error surfaced is the lowest-index one, matching a
// sequential scan.
func tuneDenseBranches(workers, n int, method string, target float64, fn func(tr *tracker, bi int) error) (*Result, error) {
	trackers := make([]*tracker, n)
	err := parallel.ForEach(workers, n, func(bi int) error {
		tr := newTracker(method, target)
		if err := fn(tr, bi); err != nil {
			return err
		}
		trackers[bi] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeTrackers(method, target, trackers), nil
}

// TuneMinHash grid-searches MinHash LSH under Problem 1. Every
// (CL, bands×rows, k) cell is independent and evaluated concurrently.
func TuneMinHash(in *core.Input, space DenseSpace, target float64) (*Result, error) {
	type branch struct {
		clean bool
		br    [2]int
		k     int
	}
	var branches []branch
	for _, clean := range space.CleanOptions {
		for _, br := range space.MHBandRows {
			for _, k := range space.MHShingles {
				branches = append(branches, branch{clean, br, k})
			}
		}
	}
	return tuneDenseBranches(space.Workers, len(branches), "MH-LSH", target, func(tr *tracker, bi int) error {
		b := branches[bi]
		m, err := averageMetrics(in, func(seed uint64) core.Filter {
			return &core.MinHashFilter{Clean: b.clean, Bands: b.br[0], Rows: b.br[1], K: b.k}
		}, space.Repetitions)
		if err != nil {
			return err
		}
		f := &core.MinHashFilter{Clean: b.clean, Bands: b.br[0], Rows: b.br[1], K: b.k}
		tr.offer(m, f, map[string]string{
			"CL": fmtBool(b.clean), "#bands": fmt.Sprintf("%d", b.br[0]),
			"#rows": fmt.Sprintf("%d", b.br[1]), "k": fmt.Sprintf("%d", b.k),
		})
		return nil
	})
}

// TuneHyperplane grid-searches Hyperplane LSH; for every (CL, tables,
// hashes) cell the probe count escalates along the ladder until the target
// recall is reached, mirroring the paper's automatic multi-probe setting.
// The (CL, tables, hashes) branches fan out; each probe ladder stays
// sequential because its termination depends on the previous rung.
func TuneHyperplane(in *core.Input, space DenseSpace, target float64) (*Result, error) {
	type branch struct {
		clean          bool
		tables, hashes int
	}
	var branches []branch
	for _, clean := range space.CleanOptions {
		for _, tables := range space.HPTables {
			for _, hashes := range space.HPHashes {
				branches = append(branches, branch{clean, tables, hashes})
			}
		}
	}
	return tuneDenseBranches(space.Workers, len(branches), "HP-LSH", target, func(tr *tracker, bi int) error {
		b := branches[bi]
		for _, probes := range space.ProbeLadder {
			probes := probes
			m, err := averageMetrics(in, func(seed uint64) core.Filter {
				return &core.HyperplaneFilter{Clean: b.clean, Tables: b.tables, Hashes: b.hashes, Probes: probes}
			}, space.Repetitions)
			if err != nil {
				return err
			}
			f := &core.HyperplaneFilter{Clean: b.clean, Tables: b.tables, Hashes: b.hashes, Probes: probes}
			tr.offer(m, f, map[string]string{
				"CL": fmtBool(b.clean), "#tables": fmt.Sprintf("%d", b.tables),
				"#hashes": fmt.Sprintf("%d", b.hashes), "#probes": fmt.Sprintf("%d", probes),
			})
			if m.PC >= target {
				break
			}
		}
		return nil
	})
}

// TuneCrossPolytope grid-searches Cross-Polytope LSH with the same
// probe-escalation rule; (CL, tables, hashes, last CP dim) branches fan
// out.
func TuneCrossPolytope(in *core.Input, space DenseSpace, target float64) (*Result, error) {
	type branch struct {
		clean                   bool
		tables, hashes, lastDim int
	}
	var branches []branch
	for _, clean := range space.CleanOptions {
		for _, tables := range space.CPTables {
			for _, hashes := range space.CPHashes {
				for _, lastDim := range space.CPLastDims {
					branches = append(branches, branch{clean, tables, hashes, lastDim})
				}
			}
		}
	}
	return tuneDenseBranches(space.Workers, len(branches), "CP-LSH", target, func(tr *tracker, bi int) error {
		b := branches[bi]
		for _, probes := range space.ProbeLadder {
			probes := probes
			m, err := averageMetrics(in, func(seed uint64) core.Filter {
				return &core.CrossPolytopeFilter{Clean: b.clean, Tables: b.tables, Hashes: b.hashes, LastCPDim: b.lastDim, Probes: probes}
			}, space.Repetitions)
			if err != nil {
				return err
			}
			f := &core.CrossPolytopeFilter{Clean: b.clean, Tables: b.tables, Hashes: b.hashes, LastCPDim: b.lastDim, Probes: probes}
			tr.offer(m, f, map[string]string{
				"CL": fmtBool(b.clean), "#tables": fmt.Sprintf("%d", b.tables),
				"#hashes": fmt.Sprintf("%d", b.hashes),
				"cp dim":  fmt.Sprintf("%d", b.lastDim),
				"#probes": fmt.Sprintf("%d", probes),
			})
			if m.PC >= target {
				break
			}
		}
		return nil
	})
}

// kGrid returns the paper's cardinality-threshold grid: [1,100] step 1,
// [105,1000] step 5, [1010,5000] step 10, capped at maxK.
func kGrid(maxK int) []int {
	var out []int
	add := func(lo, hi, step int) {
		for k := lo; k <= hi && k <= maxK; k += step {
			out = append(out, k)
		}
	}
	add(1, 100, 1)
	add(105, 1000, 5)
	add(1010, 5000, 10)
	return out
}

// sweepCardinality computes per-K metrics from ranked search results and
// feeds them to the tracker ascending, stopping at the first K that
// reaches the target. search(queries, k) must return the per-query ranked
// hit lists.
func sweepCardinality(
	tr *tracker, in *core.Input, target float64,
	idx knn.Searcher, queries []vector.Vec, reverse bool, maxK int,
	mkFilter func(k int) core.Filter, mkConfig func(k int) map[string]string,
) {
	grid := kGrid(maxK)
	if len(grid) == 0 {
		return
	}
	top := grid[len(grid)-1]
	truth := in.Task.Truth

	// One search per query at the largest K; prefix counts give every
	// smaller K for free.
	candAt := make([]int, top)
	matchAt := make([]int, top)
	for qi, q := range queries {
		for rank, r := range idx.Search(q, top) {
			candAt[rank]++
			p := entity.Pair{Left: r.ID, Right: int32(qi)}
			if reverse {
				p = entity.Pair{Left: int32(qi), Right: r.ID}
			}
			if truth.Contains(p) {
				matchAt[rank]++
			}
		}
	}
	cands, matches := 0, 0
	next := 0
	for k := 1; k <= top; k++ {
		cands += candAt[k-1]
		matches += matchAt[k-1]
		if next < len(grid) && grid[next] == k {
			next++
			m := metricsFromCounts(cands, matches, truth.Size())
			tr.offer(m, mkFilter(k), mkConfig(k))
			if m.PC >= target {
				return
			}
		}
	}
}

// TuneFlatKNN grid-searches the FAISS analog (CL × RVS × K); the four
// (CL, RVS) branches fan out, the ascending K sweep early-terminates
// inside each.
func TuneFlatKNN(in *core.Input, space DenseSpace, target float64) (*Result, error) {
	type branch struct{ clean, reverse bool }
	var branches []branch
	for _, clean := range space.CleanOptions {
		for _, reverse := range []bool{false, true} {
			branches = append(branches, branch{clean, reverse})
		}
	}
	return tuneDenseBranches(space.Workers, len(branches), "FAISS", target, func(tr *tracker, bi int) error {
		b := branches[bi]
		v1, v2 := in.Embeddings(b.clean)
		indexed, queries := v1, v2
		if b.reverse {
			indexed, queries = v2, v1
		}
		idx := knn.NewFlat(indexed, knn.L2Squared)
		maxK := space.MaxK
		if maxK > len(indexed) {
			maxK = len(indexed)
		}
		clean, reverse := b.clean, b.reverse
		sweepCardinality(tr, in, target, idx, queries, reverse, maxK,
			func(k int) core.Filter {
				return &core.FlatKNNFilter{Clean: clean, K: k, Reverse: reverse}
			},
			func(k int) map[string]string {
				return map[string]string{
					"CL": fmtBool(clean), "RVS": fmtBool(reverse), "K": fmt.Sprintf("%d", k),
				}
			})
		return nil
	})
}

// TunePartitioned grid-searches the SCANN analog
// (CL × RVS × {BF,AH} × {DP,L2²} × K) over 16 independent branches.
func TunePartitioned(in *core.Input, space DenseSpace, target float64) (*Result, error) {
	type branch struct {
		clean, reverse bool
		scoring        knn.Scoring
		metric         knn.Metric
	}
	var branches []branch
	for _, clean := range space.CleanOptions {
		for _, reverse := range []bool{false, true} {
			for _, scoring := range []knn.Scoring{knn.BruteForce, knn.AsymmetricHashing} {
				for _, metric := range []knn.Metric{knn.DotProduct, knn.L2Squared} {
					branches = append(branches, branch{clean, reverse, scoring, metric})
				}
			}
		}
	}
	return tuneDenseBranches(space.Workers, len(branches), "SCANN", target, func(tr *tracker, bi int) error {
		b := branches[bi]
		v1, v2 := in.Embeddings(b.clean)
		indexed, queries := v1, v2
		if b.reverse {
			indexed, queries = v2, v1
		}
		idx := knn.NewPartitioned(indexed, knn.PartitionedConfig{
			Metric: b.metric, Scoring: b.scoring, Seed: in.Seed,
		})
		maxK := space.MaxK
		if maxK > len(indexed) {
			maxK = len(indexed)
		}
		clean, reverse, scoring, metric := b.clean, b.reverse, b.scoring, b.metric
		sweepCardinality(tr, in, target, idx, queries, reverse, maxK,
			func(k int) core.Filter {
				return &core.PartitionedKNNFilter{Clean: clean, K: k, Reverse: reverse, Scoring: scoring, Metric: metric}
			},
			func(k int) map[string]string {
				return map[string]string{
					"CL": fmtBool(clean), "RVS": fmtBool(reverse),
					"index": scoring.String(), "similarity": metric.String(),
					"K": fmt.Sprintf("%d", k),
				}
			})
		return nil
	})
}

// TuneDeepBlocker grid-searches the DeepBlocker analog (CL × RVS × K),
// averaging over the repetitions because training is stochastic. The
// autoencoder is trained once per (CL, seed) and shared across the RVS and
// K axes; the (CL, seed) training branches fan out, and their per-cell
// sums are reduced in canonical branch order so the floating-point
// accumulation matches the sequential pass bit for bit.
func TuneDeepBlocker(in *core.Input, space DenseSpace, target float64) (*Result, error) {
	reps := space.Repetitions
	if reps < 1 {
		reps = 1
	}
	type cell struct {
		pcSum, pqSum float64
		cands, match int
	}
	truth := in.Task.Truth
	keyOf := func(clean, reverse bool, k int) string {
		return fmt.Sprintf("%v/%v/%d", clean, reverse, k)
	}
	maxK := space.MaxK

	type branch struct {
		clean bool
		rep   int
	}
	var branches []branch
	for _, clean := range space.CleanOptions {
		for r := 0; r < reps; r++ {
			branches = append(branches, branch{clean, r})
		}
	}

	// Each branch trains one autoencoder and sweeps both directions,
	// contributing one repetition's counts per (CL, RVS, K) cell.
	partials, err := parallel.Map(space.Workers, len(branches), func(bi int) (map[string]*cell, error) {
		b := branches[bi]
		part := map[string]*cell{}
		v1, v2 := in.Embeddings(b.clean)
		seed := in.Seed + uint64(b.rep)*0x51ed
		training := make([]vector.Vec, 0, len(v1)+len(v2))
		training = append(training, v1...)
		training = append(training, v2...)
		ae := trainAE(training, space, seed)
		e1 := ae.EncodeAll(v1)
		e2 := ae.EncodeAll(v2)
		for _, reverse := range []bool{false, true} {
			indexed, queries := e1, e2
			if reverse {
				indexed, queries = e2, e1
			}
			idx := knn.NewFlat(indexed, knn.L2Squared)
			top := maxK
			if top > len(indexed) {
				top = len(indexed)
			}
			candAt := make([]int, top)
			matchAt := make([]int, top)
			for qi, q := range queries {
				for rank, res := range idx.Search(q, top) {
					candAt[rank]++
					p := entity.Pair{Left: res.ID, Right: int32(qi)}
					if reverse {
						p = entity.Pair{Left: int32(qi), Right: res.ID}
					}
					if truth.Contains(p) {
						matchAt[rank]++
					}
				}
			}
			cands, matches := 0, 0
			next := 0
			grid := kGrid(top)
			for k := 1; k <= top; k++ {
				cands += candAt[k-1]
				matches += matchAt[k-1]
				if next < len(grid) && grid[next] == k {
					next++
					c := part[keyOf(b.clean, reverse, k)]
					if c == nil {
						c = &cell{}
						part[keyOf(b.clean, reverse, k)] = c
					}
					m := metricsFromCounts(cands, matches, truth.Size())
					c.pcSum += m.PC
					c.pqSum += m.PQ
					c.cands += m.Candidates
					c.match += m.Matches
					// Stop this repetition's sweep a little past the
					// target to bound work while keeping the averaged
					// cells complete near the decision boundary.
					if m.PC >= math.Min(1, target+0.05) {
						break
					}
				}
			}
		}
		return part, nil
	})
	if err != nil {
		return nil, err
	}

	// Reduce the per-branch sums in branch (clean, repetition) order:
	// each key receives its repetitions' contributions in the same order
	// as the sequential loop, keeping the float sums identical.
	best := map[string]*cell{}
	for _, part := range partials {
		for key, pc := range part {
			c := best[key]
			if c == nil {
				c = &cell{}
				best[key] = c
			}
			c.pcSum += pc.pcSum
			c.pqSum += pc.pqSum
			c.cands += pc.cands
			c.match += pc.match
		}
	}

	tr := newTracker("DeepBlocker", target)
	for _, clean := range space.CleanOptions {
		for _, reverse := range []bool{false, true} {
			for _, k := range kGrid(maxK) {
				c := best[keyOf(clean, reverse, k)]
				if c == nil {
					continue
				}
				f := float64(reps)
				m := core.Metrics{PC: c.pcSum / f, PQ: c.pqSum / f, Candidates: c.cands / reps, Matches: c.match / reps}
				filter := &core.DeepBlockerFilter{Clean: clean, K: k, Reverse: reverse, Hidden: space.AEHidden, Epochs: space.AEEpochs}
				cfg := map[string]string{
					"CL": fmtBool(clean), "RVS": fmtBool(reverse), "K": fmt.Sprintf("%d", k),
				}
				tr.offer(m, filter, cfg)
				if m.PC >= target {
					break
				}
			}
		}
	}
	return tr.result(), nil
}

// trainAE trains the DeepBlocker autoencoder with the space's bounds.
func trainAE(training []vector.Vec, space DenseSpace, seed uint64) aeEncoder {
	return aeTrain(training, space.AEHidden, space.AEEpochs, seed)
}
