package tuning

import (
	"fmt"

	"erfilter/internal/blocking"
	"erfilter/internal/cleaning"
	"erfilter/internal/core"
	"erfilter/internal/metablocking"
	"erfilter/internal/parallel"
)

// BlockingSpace is the configuration space of one blocking workflow family
// (one row group of Table III).
type BlockingSpace struct {
	// Label is the family name: SBW, QBW, EQBW, SABW, ESABW.
	Label string
	// Builders enumerates the block-building parameter grid.
	Builders []blocking.Builder
	// Proactive marks the Suffix Arrays families, which are not combined
	// with block cleaning (Section V, "Configuration space").
	Proactive bool
	// FilterRatios is the Block Filtering grid, descending; ignored for
	// proactive families.
	FilterRatios []float64
	// Cleanings is the comparison cleaning grid (CP + Meta-blocking
	// combinations).
	Cleanings []core.ComparisonCleaning
	// Workers bounds the grid-search worker pool (<=0 = NumCPU,
	// 1 = sequential). Results are identical at any worker count.
	Workers int
}

// CleaningGrid returns Comparison Propagation plus the cross product of
// the given schemes and algorithms.
func CleaningGrid(schemes []metablocking.Scheme, algorithms []metablocking.Algorithm) []core.ComparisonCleaning {
	out := []core.ComparisonCleaning{{Propagation: true}}
	for _, s := range schemes {
		for _, a := range algorithms {
			out = append(out, core.ComparisonCleaning{Scheme: s, Algorithm: a})
		}
	}
	return out
}

// FullCleaningGrid is CP plus all 42 Meta-blocking combinations.
func FullCleaningGrid() []core.ComparisonCleaning {
	return CleaningGrid(metablocking.Schemes(), metablocking.Algorithms())
}

// ratioGrid returns r values from 1.0 down to lo with the given step.
func ratioGrid(lo, step float64) []float64 {
	var out []float64
	for r := 1.0; r >= lo-1e-9; r -= step {
		out = append(out, r)
	}
	return out
}

// BlockingSpaces returns the five workflow families of Table III.
// full=true uses the paper's complete grids; full=false uses reduced but
// representative grids (documented in DESIGN.md) for laptop-scale sweeps.
func BlockingSpaces(full bool) []BlockingSpace {
	var ratios []float64
	var cleanings []core.ComparisonCleaning
	var qs, ts, lmins, bmaxs []int
	var tvals []float64
	if full {
		ratios = ratioGrid(0.025, 0.025)
		cleanings = FullCleaningGrid()
		qs = []int{2, 3, 4, 5, 6}
		tvals = []float64{0.8, 0.85, 0.9, 0.95}
		lmins = []int{2, 3, 4, 5, 6}
		for b := 2; b <= 100; b++ {
			bmaxs = append(bmaxs, b)
		}
	} else {
		ratios = ratioGrid(0.2, 0.2)
		cleanings = CleaningGrid(
			[]metablocking.Scheme{metablocking.ARCS, metablocking.CBS, metablocking.ECBS, metablocking.ChiSquare},
			[]metablocking.Algorithm{metablocking.BLAST, metablocking.RCNP, metablocking.WEP, metablocking.WNP, metablocking.RWNP},
		)
		qs = []int{3, 4, 5, 6}
		tvals = []float64{0.8, 0.9}
		lmins = []int{2, 3, 4, 6}
		bmaxs = []int{5, 10, 25, 50, 100}
	}
	_ = ts

	var qb []blocking.Builder
	for _, q := range qs {
		qb = append(qb, blocking.QGrams{Q: q})
	}
	var eqb []blocking.Builder
	for _, q := range qs {
		for _, t := range tvals {
			eqb = append(eqb, blocking.ExtendedQGrams{Q: q, T: t})
		}
	}
	var sab, esab []blocking.Builder
	for _, l := range lmins {
		for _, b := range bmaxs {
			sab = append(sab, blocking.SuffixArrays{Lmin: l, Bmax: b})
			esab = append(esab, blocking.ExtendedSuffixArrays{Lmin: l, Bmax: b})
		}
	}

	return []BlockingSpace{
		{Label: "SBW", Builders: []blocking.Builder{blocking.Standard{}}, FilterRatios: ratios, Cleanings: cleanings},
		{Label: "QBW", Builders: qb, FilterRatios: ratios, Cleanings: cleanings},
		{Label: "EQBW", Builders: eqb, FilterRatios: ratios, Cleanings: cleanings},
		{Label: "SABW", Builders: sab, Proactive: true, Cleanings: cleanings},
		{Label: "ESABW", Builders: esab, Proactive: true, Cleanings: cleanings},
	}
}

// TuneBlocking grid-searches one blocking workflow family under Problem 1.
// Blocks are built once per builder and shared across the block cleaning
// and comparison cleaning grids; per the paper, the Block Purging /
// Filtering loop terminates early once the recall upper bound of the
// cleaned blocks drops below the target, since comparison cleaning can
// only lose further recall.
//
// The search runs on space.Workers goroutines: builders are independent
// branches, each evaluated by its own tracker, and within a (builder,
// purge, ratio) line the comparison-cleaning grid fans out too. Only the
// Block Filtering ladder stays sequential — its early termination depends
// on the previous ratio's recall. Branch trackers are merged in canonical
// grid order, so the result is identical at any worker count.
func TuneBlocking(in *core.Input, space BlockingSpace, target float64) *Result {
	workers := parallel.Workers(space.Workers)
	// Split the worker budget between the builder branches and the
	// cleaning grid inside each branch: families with one builder (SBW)
	// parallelize the inner grid, wide families (SABW) the outer.
	inner := 1
	if nb := len(space.Builders); nb < workers {
		inner = (workers + nb - 1) / nb
	}

	trackers := make([]*tracker, len(space.Builders))
	err := parallel.ForEach(workers, len(space.Builders), func(bi int) error {
		tr := newTracker(space.Label, target)
		tuneBuilder(tr, in, space, space.Builders[bi], target, inner)
		trackers[bi] = tr
		return nil
	})
	if err != nil {
		// The grid evaluation itself is infallible; only a panic inside a
		// worker lands here. Re-raise it like the sequential loop would.
		panic(err)
	}

	final := newTracker(space.Label, target)
	for _, tr := range trackers {
		final.merge(tr)
	}
	return final.result()
}

// tuneBuilder walks the block-cleaning and comparison-cleaning grids of a
// single builder, feeding one tracker.
func tuneBuilder(tr *tracker, in *core.Input, space BlockingSpace, builder blocking.Builder, target float64, workers int) {
	truth := in.Task.Truth
	purgeOptions := []bool{false, true}
	ratios := space.FilterRatios
	if space.Proactive {
		purgeOptions = []bool{false}
		ratios = []float64{1}
	}

	raw := blocking.Build(in.V1, in.V2, builder)
	for _, purge := range purgeOptions {
		base := raw
		if purge {
			base = cleaning.Purge(raw)
		}
		for _, r := range ratios {
			blocks := base
			if r < 1 {
				blocks = cleaning.Filter(base, r)
			}
			g := metablocking.BuildGraph(blocks)
			ub := core.Evaluate(g.Pairs, truth)
			if ub.PC < target {
				// Smaller ratios only shrink the blocks further:
				// stop this grid line, as in the paper.
				tr.addEvaluated(len(space.Cleanings))
				tr.offer(ub, workflowFilter(space.Label, builder, purge, r, core.ComparisonCleaning{Propagation: true}), blockConfig(builder, purge, r, core.ComparisonCleaning{Propagation: true}))
				break
			}
			tp := blocks.TotalPlacements()
			// The cleanings are independent reads of the shared graph:
			// evaluate them concurrently, then offer in grid order.
			metrics, err := parallel.Map(workers, len(space.Cleanings), func(ci int) (core.Metrics, error) {
				cl := space.Cleanings[ci]
				if cl.Propagation {
					return ub, nil
				}
				pairs := metablocking.Prune(g, cl.Scheme, cl.Algorithm, tp)
				return core.Evaluate(pairs, truth), nil
			})
			if err != nil {
				panic(err)
			}
			for ci, m := range metrics {
				cl := space.Cleanings[ci]
				tr.offer(m, workflowFilter(space.Label, builder, purge, r, cl), blockConfig(builder, purge, r, cl))
			}
		}
	}
}

func workflowFilter(label string, b blocking.Builder, purge bool, r float64, cl core.ComparisonCleaning) *core.BlockingWorkflow {
	return &core.BlockingWorkflow{
		Label:       label,
		Builder:     b,
		Purging:     purge,
		FilterRatio: r,
		Cleaning:    cl,
	}
}

func blockConfig(b blocking.Builder, purge bool, r float64, cl core.ComparisonCleaning) map[string]string {
	cfg := map[string]string{
		"builder": b.Name(),
		"BP":      fmtBool(purge),
		"BFr":     fmt.Sprintf("%.3f", r),
	}
	if cl.Propagation {
		cfg["PA"] = "CP"
	} else {
		cfg["PA"] = cl.Algorithm.String()
		cfg["WS"] = cl.Scheme.String()
	}
	return cfg
}
