package tuning

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"erfilter/internal/core"
)

// denseTestSpace returns a thinned dense space that keeps the
// determinism sweeps fast.
func denseTestSpace(workers int) DenseSpace {
	s := DefaultDenseSpace(false)
	s.Repetitions = 1
	s.HPTables = []int{4, 8}
	s.HPHashes = []int{6, 10}
	s.CPTables = []int{4}
	s.CPHashes = []int{1, 2}
	s.CPLastDims = []int{16, 64}
	s.MHBandRows = [][2]int{{16, 8}, {32, 8}, {64, 4}}
	s.MHShingles = []int{2, 3}
	s.MaxK = 60
	s.AEHidden = 8
	s.AEEpochs = 1
	s.Workers = workers
	return s
}

// requireSameResult asserts two tuning results are indistinguishable:
// same winning configuration, filter, metrics, satisfaction and
// evaluation count.
func requireSameResult(t *testing.T, name string, seq, par *Result) {
	t.Helper()
	if seq.Method != par.Method {
		t.Errorf("%s: method %q != %q", name, seq.Method, par.Method)
	}
	if !reflect.DeepEqual(seq.Config, par.Config) {
		t.Errorf("%s: config diverged\n  workers=1: %v\n  workers=4: %v", name, seq.Config, par.Config)
	}
	if !reflect.DeepEqual(seq.Filter, par.Filter) {
		t.Errorf("%s: filter diverged\n  workers=1: %#v\n  workers=4: %#v", name, seq.Filter, par.Filter)
	}
	if seq.Metrics != par.Metrics {
		t.Errorf("%s: metrics diverged\n  workers=1: %+v\n  workers=4: %+v", name, seq.Metrics, par.Metrics)
	}
	if seq.Satisfied != par.Satisfied {
		t.Errorf("%s: satisfied %v != %v", name, seq.Satisfied, par.Satisfied)
	}
	if seq.Evaluated != par.Evaluated {
		t.Errorf("%s: evaluated %d != %d", name, seq.Evaluated, par.Evaluated)
	}
}

// TestTunersDeterministicAcrossWorkerCounts runs every tuner once on the
// sequential path (Workers=1) and once on a 4-worker pool over identical
// fresh inputs and requires identical results: the parallel grid search
// must be a pure performance optimization.
func TestTunersDeterministicAcrossWorkerCounts(t *testing.T) {
	type variant struct {
		name string
		run  func(in *core.Input, workers int) (*Result, error)
	}
	variants := []variant{
		{"SBW", func(in *core.Input, w int) (*Result, error) {
			space := BlockingSpaces(false)[0]
			space.Workers = w
			return TuneBlocking(in, space, DefaultTarget), nil
		}},
		{"QBW", func(in *core.Input, w int) (*Result, error) {
			space := BlockingSpaces(false)[1]
			space.Workers = w
			return TuneBlocking(in, space, DefaultTarget), nil
		}},
		{"SABW", func(in *core.Input, w int) (*Result, error) {
			space := BlockingSpaces(false)[3]
			space.Workers = w
			return TuneBlocking(in, space, DefaultTarget), nil
		}},
		{"SBW-stepwise", func(in *core.Input, w int) (*Result, error) {
			space := BlockingSpaces(false)[0]
			space.Workers = w
			return TuneBlockingStepwise(in, space, DefaultTarget), nil
		}},
		{"eps-Join", func(in *core.Input, w int) (*Result, error) {
			space := DefaultSparseSpace(false)
			space.Workers = w
			return TuneEpsJoin(in, space, DefaultTarget), nil
		}},
		{"kNNJ", func(in *core.Input, w int) (*Result, error) {
			space := DefaultSparseSpace(false)
			space.Workers = w
			return TuneKNNJoin(in, space, DefaultTarget), nil
		}},
		{"MH-LSH", func(in *core.Input, w int) (*Result, error) {
			return TuneMinHash(in, denseTestSpace(w), DefaultTarget)
		}},
		{"HP-LSH", func(in *core.Input, w int) (*Result, error) {
			return TuneHyperplane(in, denseTestSpace(w), DefaultTarget)
		}},
		{"CP-LSH", func(in *core.Input, w int) (*Result, error) {
			return TuneCrossPolytope(in, denseTestSpace(w), DefaultTarget)
		}},
		{"FAISS", func(in *core.Input, w int) (*Result, error) {
			return TuneFlatKNN(in, denseTestSpace(w), DefaultTarget)
		}},
		{"SCANN", func(in *core.Input, w int) (*Result, error) {
			return TunePartitioned(in, denseTestSpace(w), DefaultTarget)
		}},
		{"DeepBlocker", func(in *core.Input, w int) (*Result, error) {
			return TuneDeepBlocker(in, denseTestSpace(w), DefaultTarget)
		}},
	}

	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			seq, err := v.run(testInput(t), 1)
			if err != nil {
				t.Fatal(err)
			}
			par, err := v.run(testInput(t), 4)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, v.name, seq, par)
		})
	}
}

// TestConcurrentTunersSharedInput drives several parallel tuners over ONE
// shared core.Input at the same time, hammering the lazily computed
// text/embedding caches from many goroutines. Run under -race (the
// Makefile check target does) this is the regression test for the Input
// cache synchronization.
func TestConcurrentTunersSharedInput(t *testing.T) {
	in := testInput(t)
	var wg sync.WaitGroup
	launch := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f()
		}()
	}
	sparse := DefaultSparseSpace(false)
	sparse.Workers = 4
	blockingSpace := BlockingSpaces(false)[0]
	blockingSpace.Workers = 4
	dense := denseTestSpace(4)

	launch(func() { TuneBlocking(in, blockingSpace, DefaultTarget) })
	launch(func() { TuneEpsJoin(in, sparse, DefaultTarget) })
	launch(func() { TuneKNNJoin(in, sparse, DefaultTarget) })
	launch(func() {
		if _, err := TuneMinHash(in, dense, DefaultTarget); err != nil {
			t.Error(err)
		}
	})
	launch(func() {
		if _, err := TuneFlatKNN(in, dense, DefaultTarget); err != nil {
			t.Error(err)
		}
	})
	launch(func() {
		if _, err := TuneDeepBlocker(in, dense, DefaultTarget); err != nil {
			t.Error(err)
		}
	})
	wg.Wait()
}

// refBest is an independent restatement of the Problem-1 selection rule:
// prefer satisfied over unsatisfied; among satisfied maximize PQ; among
// unsatisfied maximize (PC, then PQ); on exact ties keep the earliest
// offer. It returns the index of the expected winner.
func refBest(ms []core.Metrics, target float64) int {
	best := -1
	for i, m := range ms {
		if best == -1 {
			best = i
			continue
		}
		b := ms[best]
		si, sb := m.PC >= target, b.PC >= target
		switch {
		case si && !sb:
			best = i
		case si == sb && si && m.PQ > b.PQ:
			best = i
		case si == sb && !si && (m.PC > b.PC || (m.PC == b.PC && m.PQ > b.PQ)):
			best = i
		}
	}
	return best
}

// TestTrackerOfferProperty is the property-style test of the satellite
// task: over many random offer sequences drawn from a coarse value grid
// (to force exact ties), the tracker must (1) pick the same winner as the
// reference rule, with ties broken toward the earliest offer —
// satisfied-beats-unsatisfied, PQ tie-break among satisfied, (PC, PQ)
// fallback among unsatisfied — (2) count every offer in Evaluated
// (accumulated, never overwritten by the winning copy), and (3) produce
// the identical result when the sequence is split into chunks tracked
// independently and merged in order, which is exactly the concurrent
// reduction used by the parallel tuners.
//
// Note: the pre-existing offer implementation passed (2) as well — the
// suspected "Evaluated copied rather than overwritten" bug did not
// reproduce; this test pins the behavior so the merge path cannot
// reintroduce it.
func TestTrackerOfferProperty(t *testing.T) {
	const target = 0.9
	vals := []float64{0, 0.25, 0.5, 0.85, 0.9, 0.95, 1}
	rng := rand.New(rand.NewSource(42))

	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(40)
		ms := make([]core.Metrics, n)
		cfgs := make([]map[string]string, n)
		for i := range ms {
			ms[i] = core.Metrics{
				PC: vals[rng.Intn(len(vals))],
				PQ: vals[rng.Intn(len(vals))],
			}
			cfgs[i] = map[string]string{"i": string(rune('A' + i))}
		}

		// Sequential tracker.
		seq := newTracker("prop", target)
		for i := range ms {
			seq.offer(ms[i], nil, cfgs[i])
		}
		got := seq.result()

		// (1) Reference winner.
		want := refBest(ms, target)
		if !reflect.DeepEqual(got.Config, cfgs[want]) {
			t.Fatalf("trial %d: winner %v, want offer %d (%v)\nsequence: %+v",
				trial, got.Config, want, cfgs[want], ms)
		}
		if got.Metrics != ms[want] {
			t.Fatalf("trial %d: winner metrics %+v, want %+v", trial, got.Metrics, ms[want])
		}
		if got.Satisfied != (ms[want].PC >= target) {
			t.Fatalf("trial %d: satisfied = %v", trial, got.Satisfied)
		}

		// (2) Evaluated accumulates across every offer.
		if got.Evaluated != n {
			t.Fatalf("trial %d: Evaluated = %d, want %d", trial, got.Evaluated, n)
		}

		// (3) Chunked trackers merged in canonical order reproduce the
		// sequential scan exactly.
		var chunked []*tracker
		for lo := 0; lo < n; {
			hi := lo + 1 + rng.Intn(n-lo)
			tr := newTracker("prop", target)
			for i := lo; i < hi; i++ {
				tr.offer(ms[i], nil, cfgs[i])
			}
			chunked = append(chunked, tr)
			lo = hi
		}
		merged := newTracker("prop", target)
		for _, tr := range chunked {
			merged.merge(tr)
		}
		mr := merged.result()
		if !reflect.DeepEqual(mr.Config, got.Config) || mr.Metrics != got.Metrics ||
			mr.Satisfied != got.Satisfied || mr.Evaluated != got.Evaluated {
			t.Fatalf("trial %d: merged result diverged from sequential\n  sequential: %+v\n  merged: %+v\nsequence: %+v",
				trial, got, mr, ms)
		}
	}
}

// TestTrackerMergeEmptyBranches checks that branches which offered
// nothing (fully early-terminated grid lines) merge as pure Evaluated
// counts without disturbing the winner.
func TestTrackerMergeEmptyBranches(t *testing.T) {
	a := newTracker("x", 0.9)
	a.offer(core.Metrics{PC: 0.95, PQ: 0.4}, nil, map[string]string{"a": "1"})

	empty := newTracker("x", 0.9)
	empty.addEvaluated(7)

	final := newTracker("x", 0.9)
	final.merge(empty)
	final.merge(a)
	r := final.result()
	if r.Config["a"] != "1" || !r.Satisfied {
		t.Fatalf("winner lost through empty merge: %+v", r)
	}
	if r.Evaluated != 8 {
		t.Fatalf("Evaluated = %d, want 8", r.Evaluated)
	}
}
