// Package deepblocker reimplements the DeepBlocker filtering method of
// Thirumuruganathan et al. (PVLDB 2021) in the configuration the paper
// evaluates: the self-supervised Autoencoder tuple-embedding module over
// (substituted) fastText vectors, with exact kNN search for indexing and
// querying. Training uses plain SGD on the reconstruction loss; the random
// weight initialization makes the method stochastic, as the paper's
// taxonomy notes (Table II).
package deepblocker

import (
	"math"

	"erfilter/internal/vector"
)

// Autoencoder is a single-hidden-layer tied-size autoencoder:
// h = tanh(W1 x + b1), x' = W2 h + b2, trained to minimize ||x' - x||^2.
// The encoder output h is the tuple embedding used for filtering.
type Autoencoder struct {
	in, hidden int
	w1, b1     []float64 // w1 is hidden x in
	w2, b2     []float64 // w2 is in x hidden
}

// TrainConfig controls autoencoder training.
type TrainConfig struct {
	// Hidden is the encoder dimensionality (DeepBlocker reduces the 300-d
	// input; 0 selects in/2).
	Hidden int
	// Epochs over the training set; 0 selects 10.
	Epochs int
	// LearningRate of plain SGD; 0 selects 0.05.
	LearningRate float64
	// Seed drives weight initialization and example shuffling.
	Seed uint64
}

// Train fits an autoencoder on the given tuple embeddings. An empty
// training set yields an untrained identity-like encoder over vector.Dim
// inputs.
func Train(samples []vector.Vec, cfg TrainConfig) *Autoencoder {
	if len(samples) == 0 {
		samples = []vector.Vec{make(vector.Vec, vector.Dim)}
	}
	in := len(samples[0])
	hidden := cfg.Hidden
	if hidden <= 0 {
		hidden = in / 2
	}
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 10
	}
	lr := cfg.LearningRate
	if lr <= 0 {
		lr = 0.05
	}

	a := &Autoencoder{
		in:     in,
		hidden: hidden,
		w1:     make([]float64, hidden*in),
		b1:     make([]float64, hidden),
		w2:     make([]float64, in*hidden),
		b2:     make([]float64, in),
	}
	// Xavier-style initialization from the seed.
	initScale1 := math.Sqrt(1.0 / float64(in))
	initScale2 := math.Sqrt(1.0 / float64(hidden))
	vector.Gaussian(a.w1, cfg.Seed+1)
	vector.Gaussian(a.w2, cfg.Seed+2)
	for i := range a.w1 {
		a.w1[i] *= initScale1
	}
	for i := range a.w2 {
		a.w2[i] *= initScale2
	}

	h := make([]float64, hidden)
	y := make([]float64, in)
	dy := make([]float64, in)
	dh := make([]float64, hidden)

	n := len(samples)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < epochs; epoch++ {
		// Deterministic Fisher-Yates shuffle from the seed.
		for i := n - 1; i > 0; i-- {
			j := int(vector.Mix64(uint64(epoch)<<32|uint64(i), cfg.Seed+3) % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
		for _, si := range order {
			x := samples[si]
			a.forward(x, h, y)
			// Output gradient of the MSE loss.
			for i := 0; i < in; i++ {
				dy[i] = 2 * (y[i] - float64(x[i])) / float64(in)
			}
			// Hidden gradient through tanh.
			for j := 0; j < hidden; j++ {
				var g float64
				for i := 0; i < in; i++ {
					g += a.w2[i*hidden+j] * dy[i]
				}
				dh[j] = g * (1 - h[j]*h[j])
			}
			// SGD updates.
			for i := 0; i < in; i++ {
				gi := lr * dy[i]
				for j := 0; j < hidden; j++ {
					a.w2[i*hidden+j] -= gi * h[j]
				}
				a.b2[i] -= gi
			}
			for j := 0; j < hidden; j++ {
				gj := lr * dh[j]
				row := a.w1[j*in : (j+1)*in]
				for i := 0; i < in; i++ {
					row[i] -= gj * float64(x[i])
				}
				a.b1[j] -= gj
			}
		}
	}
	return a
}

// forward computes the hidden activation h and reconstruction y of x.
func (a *Autoencoder) forward(x vector.Vec, h, y []float64) {
	for j := 0; j < a.hidden; j++ {
		row := a.w1[j*a.in : (j+1)*a.in]
		s := a.b1[j]
		for i := range row {
			s += row[i] * float64(x[i])
		}
		h[j] = math.Tanh(s)
	}
	if y != nil {
		for i := 0; i < a.in; i++ {
			row := a.w2[i*a.hidden : (i+1)*a.hidden]
			s := a.b2[i]
			for j := range row {
				s += row[j] * h[j]
			}
			y[i] = s
		}
	}
}

// Loss returns the mean reconstruction error over the samples.
func (a *Autoencoder) Loss(samples []vector.Vec) float64 {
	h := make([]float64, a.hidden)
	y := make([]float64, a.in)
	var total float64
	for _, x := range samples {
		a.forward(x, h, y)
		var s float64
		for i := range y {
			d := y[i] - float64(x[i])
			s += d * d
		}
		total += s / float64(a.in)
	}
	return total / float64(len(samples))
}

// Encode maps an input vector to its normalized tuple embedding.
func (a *Autoencoder) Encode(x vector.Vec) vector.Vec {
	h := make([]float64, a.hidden)
	a.forward(x, h, nil)
	out := make(vector.Vec, a.hidden)
	for j := range h {
		out[j] = float32(h[j])
	}
	return vector.Normalize(out)
}

// EncodeAll encodes every sample.
func (a *Autoencoder) EncodeAll(samples []vector.Vec) []vector.Vec {
	out := make([]vector.Vec, len(samples))
	for i, x := range samples {
		out[i] = a.Encode(x)
	}
	return out
}
