package deepblocker

import (
	"math"
	"testing"

	"erfilter/internal/vector"
)

func samples(n, dim int, seed uint64) []vector.Vec {
	out := make([]vector.Vec, n)
	buf := make([]float64, dim)
	for i := range out {
		vector.Gaussian(buf, seed+uint64(i))
		v := make(vector.Vec, dim)
		for j := range v {
			v[j] = float32(buf[j])
		}
		out[i] = vector.Normalize(v)
	}
	return out
}

func TestTrainingReducesLoss(t *testing.T) {
	xs := samples(60, 32, 1)
	untrained := Train(xs, TrainConfig{Hidden: 16, Epochs: 0, LearningRate: 1e-12, Seed: 5})
	trained := Train(xs, TrainConfig{Hidden: 16, Epochs: 30, LearningRate: 0.05, Seed: 5})
	l0 := untrained.Loss(xs)
	l1 := trained.Loss(xs)
	if !(l1 < l0*0.9) {
		t.Fatalf("training did not reduce loss: %v -> %v", l0, l1)
	}
	if math.IsNaN(l1) || math.IsInf(l1, 0) {
		t.Fatalf("loss diverged: %v", l1)
	}
}

func TestEncodeShapeAndNorm(t *testing.T) {
	xs := samples(20, 24, 2)
	ae := Train(xs, TrainConfig{Hidden: 8, Epochs: 3, Seed: 1})
	enc := ae.Encode(xs[0])
	if len(enc) != 8 {
		t.Fatalf("encoded dim = %d", len(enc))
	}
	if math.Abs(vector.Norm(enc)-1) > 1e-5 {
		t.Fatalf("encoded norm = %v", vector.Norm(enc))
	}
	all := ae.EncodeAll(xs)
	if len(all) != len(xs) {
		t.Fatalf("EncodeAll length = %d", len(all))
	}
}

func TestStochasticAcrossSeeds(t *testing.T) {
	xs := samples(20, 16, 3)
	a := Train(xs, TrainConfig{Hidden: 8, Epochs: 2, Seed: 1})
	b := Train(xs, TrainConfig{Hidden: 8, Epochs: 2, Seed: 2})
	ea, eb := a.Encode(xs[0]), b.Encode(xs[0])
	same := true
	for i := range ea {
		if ea[i] != eb[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical encoders")
	}
	// Same seed must reproduce exactly (determinism given the seed).
	c := Train(xs, TrainConfig{Hidden: 8, Epochs: 2, Seed: 1})
	ec := c.Encode(xs[0])
	for i := range ea {
		if ea[i] != ec[i] {
			t.Fatal("same seed did not reproduce the encoder")
		}
	}
}

func TestEncoderPreservesNeighborhoods(t *testing.T) {
	// Two tight clusters: after training, intra-cluster encoded similarity
	// must exceed inter-cluster similarity on average.
	dim := 32
	base1 := samples(1, dim, 10)[0]
	base2 := samples(1, dim, 20)[0]
	perturb := func(base vector.Vec, seed uint64) vector.Vec {
		noise := samples(1, dim, seed)[0]
		v := vector.Clone(base)
		for i := range v {
			v[i] += 0.1 * noise[i]
		}
		return vector.Normalize(v)
	}
	var xs []vector.Vec
	for i := 0; i < 15; i++ {
		xs = append(xs, perturb(base1, uint64(100+i)))
	}
	for i := 0; i < 15; i++ {
		xs = append(xs, perturb(base2, uint64(200+i)))
	}
	ae := Train(xs, TrainConfig{Hidden: 8, Epochs: 20, Seed: 7})
	enc := ae.EncodeAll(xs)
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < len(enc); i++ {
		for j := i + 1; j < len(enc); j++ {
			s := vector.Dot(enc[i], enc[j])
			if (i < 15) == (j < 15) {
				intra += s
				nIntra++
			} else {
				inter += s
				nInter++
			}
		}
	}
	if intra/float64(nIntra) <= inter/float64(nInter) {
		t.Fatalf("encoder destroyed cluster structure: intra=%.3f inter=%.3f",
			intra/float64(nIntra), inter/float64(nInter))
	}
}
