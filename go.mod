module erfilter

go 1.22
