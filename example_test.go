package erfilter_test

import (
	"fmt"

	"erfilter"
)

// ExampleEvaluate shows the two effectiveness measures of the paper's
// Section III: Pair Completeness (recall) and Pairs Quality (precision).
func ExampleEvaluate() {
	truth := erfilter.NewGroundTruth([]erfilter.Pair{
		{Left: 0, Right: 0},
		{Left: 1, Right: 1},
	})
	candidates := []erfilter.Pair{
		{Left: 0, Right: 0}, // true match
		{Left: 0, Right: 1}, // superfluous
		{Left: 2, Right: 2}, // superfluous
	}
	m := erfilter.Evaluate(candidates, truth)
	fmt.Printf("PC=%.2f PQ=%.2f |C|=%d\n", m.PC, m.PQ, m.Candidates)
	// Output: PC=0.50 PQ=0.33 |C|=3
}

// Example_pipeline runs the full Filtering-Verification pipeline on two
// tiny catalogs.
func Example_pipeline() {
	shopA := erfilter.NewDataset("A", []erfilter.Profile{
		{Attrs: []erfilter.Attribute{{Name: "title", Value: "canon powershot a540"}}},
		{Attrs: []erfilter.Attribute{{Name: "title", Value: "nikon coolpix p100"}}},
	})
	shopB := erfilter.NewDataset("B", []erfilter.Profile{
		{Attrs: []erfilter.Attribute{{Name: "title", Value: "canon power shot a540 camera"}}},
		{Attrs: []erfilter.Attribute{{Name: "title", Value: "garmin nuvi 350"}}},
	})
	truth := erfilter.NewGroundTruth([]erfilter.Pair{{Left: 0, Right: 0}})
	task := &erfilter.Task{Name: "shops", E1: shopA, E2: shopB, Truth: truth}
	task.BestAttribute = erfilter.BestAttribute(task)

	in := erfilter.NewInput(task, erfilter.SchemaAgnostic)

	// Filtering: 1-nearest-neighbor join over character trigrams.
	model, _ := erfilter.ParseModel("C3G")
	filter := &erfilter.KNNJoinFilter{Model: model, Measure: erfilter.Cosine, K: 1}
	out, _ := filter.Run(in)

	// Verification: TF-IDF cosine threshold.
	matcher := erfilter.NewMatcher(erfilter.SimTFIDFCosine, 0.2, in)
	matches := matcher.Verify(out.Pairs, in.V1, in.V2)

	q := erfilter.EvaluateMatches(matches, truth)
	fmt.Printf("matches=%d recall=%.1f precision=%.1f\n", len(matches), q.Recall, q.Precision)
	// Output: matches=1 recall=1.0 precision=1.0
}

// ExampleParseModel converts Table IV representation-model names.
func ExampleParseModel() {
	m, _ := erfilter.ParseModel("C5GM")
	fmt.Println(m.N, m.Multiset, m)
	// Output: 5 true C5GM
}
